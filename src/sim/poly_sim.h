// The §4.2 stochastic simulation of polyvalue birth and death.
//
// Re-implemented from the paper's description:
//   * transactions (updates) arrive at rate U (Poisson process);
//   * each update writes one item chosen uniformly from the I items and
//     depends on d further items, d drawn with mean D (exponential,
//     probabilistically rounded so E[d] = D exactly);
//   * the previous value of the written item is part of its new value
//     with probability (1 − Y);
//   * an update fails with probability F; a failed update makes its item
//     a polyvalue tagged with the failing transaction and schedules that
//     transaction's recovery after Exp(1/R) seconds;
//   * a successful update that reads any tagged item propagates the union
//     of the input tags onto the written item (a polytransaction); if no
//     input is tagged and Y strikes (or the item's own tag set empties),
//     the written item becomes simple again;
//   * recovery of a transaction removes its tag everywhere; items whose
//     tag set empties become simple.
//
// This tracks exactly what the paper tracks — *which* items are
// uncertain and on which transactions they depend — without storing
// values, so databases of 10^6 items simulate comfortably (the paper
// notes its own implementation was limited to small databases; ours
// reproduces Table 2 at the original sizes and beyond).
#ifndef SRC_SIM_POLY_SIM_H_
#define SRC_SIM_POLY_SIM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/event/simulator.h"
#include "src/workload/distribution.h"

namespace polyvalue {

struct PolySimParams {
  double updates_per_second = 10;     // U
  double failure_probability = 0.01;  // F
  uint64_t items = 10000;             // I
  double recovery_rate = 0.01;        // R
  double overwrite_probability = 0;   // Y
  double dependency_degree = 1;       // D
  uint64_t seed = 1;

  // Non-uniform access (§4.2's remark: "the selection of items ... is
  // not likely to be uniform. ... This has the effect of reducing the
  // effective size of the database."). With probability
  // hotspot_access_probability an access targets the hot set (the first
  // hotspot_fraction·I items); 0 disables skew.
  double hotspot_fraction = 0.0;
  double hotspot_access_probability = 0.0;

  // Measurement protocol: run warmup_seconds, then measure the
  // time-weighted average of P(t) over measure_seconds.
  double warmup_seconds = 2000;
  double measure_seconds = 10000;
};

struct PolySimStats {
  double average_polyvalues = 0;  // time-weighted mean of P(t)
  double peak_polyvalues = 0;
  uint64_t updates = 0;
  uint64_t failures = 0;
  uint64_t recoveries = 0;
  uint64_t propagations = 0;   // successful updates that spread tags
  uint64_t overwrites = 0;     // polyvalues erased by simple overwrites
  double final_polyvalues = 0;
};

// Runs the full protocol (warmup + measurement) and reports stats.
PolySimStats RunPolySim(const PolySimParams& params);

// Stepping interface for tests and custom studies.
class PolySim {
 public:
  explicit PolySim(const PolySimParams& params);

  // Advances the simulation to absolute time `until` (seconds).
  void AdvanceTo(double until);

  double now() const { return sim_.now(); }
  size_t CurrentPolyvalues() const { return tagged_items_.size(); }

  // Begins the measurement window at the current time.
  void StartMeasurement();
  PolySimStats Stats();

 private:
  void ScheduleNextUpdate();
  void RunUpdate();
  void RecoverTxn(uint64_t txn);
  void Observe();
  void TrackPeak();

  // Picks an item index, honouring the hotspot skew when configured.
  uint64_t PickItem() { return item_dist_.Pick(&rng_); }

  PolySimParams params_;
  Simulator sim_;
  Rng rng_;
  KeyDistribution item_dist_;
  uint64_t next_txn_ = 1;

  // item -> set of transactions its (poly)value depends on.
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> tagged_items_;
  // failed transaction -> items tagged with it.
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> txn_items_;

  TimeWeightedStat p_stat_;
  PolySimStats counters_;
};

}  // namespace polyvalue

#endif  // SRC_SIM_POLY_SIM_H_
