#include "src/sim/poly_sim.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace polyvalue {

namespace {

// The §4.2 skew knobs expressed as a shared KeyDistribution: hot-set
// when both knobs are positive, uniform otherwise.
KeyDistParams ItemDistParams(const PolySimParams& params) {
  KeyDistParams dist;
  if (params.hotspot_access_probability > 0.0 &&
      params.hotspot_fraction > 0.0) {
    dist.kind = KeyDistKind::kHotSet;
    dist.hot_fraction = params.hotspot_fraction;
    dist.hot_probability = params.hotspot_access_probability;
  }
  return dist;
}

}  // namespace

PolySim::PolySim(const PolySimParams& params)
    : params_(params),
      rng_(params.seed),
      item_dist_(ItemDistParams(params), params.items) {
  POLYV_CHECK_GT(params_.updates_per_second, 0.0);
  POLYV_CHECK_GT(params_.items, 0u);
  ScheduleNextUpdate();
}

void PolySim::ScheduleNextUpdate() {
  const double gap = rng_.NextExponential(1.0 / params_.updates_per_second);
  sim_.After(gap, [this] {
    RunUpdate();
    ScheduleNextUpdate();
  });
}

void PolySim::RunUpdate() {
  Observe();  // close the interval at the pre-event level
  ++counters_.updates;
  const uint64_t target = PickItem();
  const uint64_t txn = next_txn_++;

  if (rng_.NextBool(params_.failure_probability)) {
    // The update's transaction is suspended by a failure: the target item
    // becomes a polyvalue {⟨new, T⟩, ⟨old, ¬T⟩} tagged with T. Any tags
    // the item carried before remain — both branches embed the old value.
    ++counters_.failures;
    tagged_items_[target].insert(txn);
    txn_items_[txn].insert(target);
    const double recovery_in =
        rng_.NextExponential(1.0 / params_.recovery_rate);
    sim_.After(recovery_in, [this, txn] { RecoverTxn(txn); });
    TrackPeak();
    return;
  }

  // Successful update: gather the tags of the d items the new value
  // depends on.
  const uint64_t d = DrawExponentialCount(&rng_, params_.dependency_degree);
  std::unordered_set<uint64_t> inherited;
  for (uint64_t i = 0; i < d; ++i) {
    const uint64_t source = PickItem();
    auto it = tagged_items_.find(source);
    if (it != tagged_items_.end()) {
      inherited.insert(it->second.begin(), it->second.end());
    }
  }
  const bool keeps_previous = !rng_.NextBool(params_.overwrite_probability);
  auto target_it = tagged_items_.find(target);
  if (keeps_previous && target_it != tagged_items_.end()) {
    inherited.insert(target_it->second.begin(), target_it->second.end());
  }

  if (inherited.empty()) {
    // New value is certain. If the item used to be uncertain, the simple
    // overwrite erases its uncertainty (the model's U·Y·P/I death term).
    if (target_it != tagged_items_.end()) {
      ++counters_.overwrites;
      for (uint64_t tag : target_it->second) {
        auto txn_it = txn_items_.find(tag);
        if (txn_it != txn_items_.end()) {
          txn_it->second.erase(target);
        }
      }
      tagged_items_.erase(target_it);
    }
    return;
  }

  // Polytransaction: the written item now depends on every inherited tag
  // (the model's U·D·P/I birth term).
  ++counters_.propagations;
  // Replace the old tag set (tags kept via keeps_previous are already in
  // `inherited`).
  if (target_it != tagged_items_.end()) {
    for (uint64_t tag : target_it->second) {
      if (inherited.count(tag) == 0) {
        auto txn_it = txn_items_.find(tag);
        if (txn_it != txn_items_.end()) {
          txn_it->second.erase(target);
        }
      }
    }
  }
  for (uint64_t tag : inherited) {
    txn_items_[tag].insert(target);
  }
  tagged_items_[target] = std::move(inherited);
  TrackPeak();
}

void PolySim::RecoverTxn(uint64_t txn) {
  Observe();
  ++counters_.recoveries;
  auto it = txn_items_.find(txn);
  if (it == txn_items_.end()) {
    return;
  }
  for (uint64_t item : it->second) {
    auto item_it = tagged_items_.find(item);
    if (item_it == tagged_items_.end()) {
      continue;
    }
    item_it->second.erase(txn);
    if (item_it->second.empty()) {
      tagged_items_.erase(item_it);
    }
  }
  txn_items_.erase(it);
}

void PolySim::Observe() {
  p_stat_.Observe(sim_.now(), static_cast<double>(tagged_items_.size()));
}

void PolySim::TrackPeak() {
  counters_.peak_polyvalues =
      std::max(counters_.peak_polyvalues,
               static_cast<double>(tagged_items_.size()));
}

void PolySim::AdvanceTo(double until) {
  sim_.RunUntil(until);
  p_stat_.Observe(sim_.now(), static_cast<double>(tagged_items_.size()));
}

void PolySim::StartMeasurement() {
  p_stat_.Reset(sim_.now());
  counters_.peak_polyvalues = static_cast<double>(tagged_items_.size());
}

PolySimStats PolySim::Stats() {
  PolySimStats out = counters_;
  out.average_polyvalues = p_stat_.average();
  out.final_polyvalues = static_cast<double>(tagged_items_.size());
  return out;
}

PolySimStats RunPolySim(const PolySimParams& params) {
  PolySim sim(params);
  sim.AdvanceTo(params.warmup_seconds);
  sim.StartMeasurement();
  sim.AdvanceTo(params.warmup_seconds + params.measure_seconds);
  return sim.Stats();
}

}  // namespace polyvalue
