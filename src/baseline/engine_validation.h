// End-to-end validation of the §4.1 model against the REAL engine.
//
// The paper validates its polyvalue-count model with an abstract
// simulation (§4.2, our src/sim). This harness goes further: it drives
// the actual protocol stack — two-phase commit, wait timeouts, polyvalue
// installs, polytransactions, outcome inquiry — under a workload shaped
// exactly like the paper's (U updates/s, each writing one random item and
// reading d ~ Exp(D) others, self-dependency with probability 1−Y), with
// per-transaction failures injected by dropping the transaction's
// COMPLETE/outcome messages for an Exp(1/R) recovery period (a targeted
// SimTransport filter — whole-site crashes cannot express independent
// per-update failures).
//
// If the implementation is faithful, the measured average number of
// uncertain items matches P = UFI/(IR + UY − UD) — the same comparison
// as Table 2, but with every layer of the real system in the loop.
#ifndef SRC_BASELINE_ENGINE_VALIDATION_H_
#define SRC_BASELINE_ENGINE_VALIDATION_H_

#include <cstdint>

#include "src/model/analytic.h"
#include "src/system/cluster.h"

namespace polyvalue {

struct EngineValidationParams {
  size_t sites = 8;
  uint64_t items = 2000;               // I, spread round-robin over sites
  double updates_per_second = 10;      // U (offered)
  double failure_probability = 0.01;   // F (per-txn outcome-message loss)
  double recovery_rate = 0.05;         // R (1/mean outage per failed txn)
  double dependency_degree = 1;        // D (extra read items, exp. mean)
  double overwrite_probability = 0;    // Y (new value ignores old value)
  double warmup_seconds = 30;
  double measure_seconds = 120;
  double sample_interval = 0.25;       // P(t) sampling cadence
  uint64_t seed = 1;
};

struct EngineValidationReport {
  double avg_uncertain_items = 0;  // measured P
  double peak_uncertain_items = 0;
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t stranded = 0;           // txns whose outcome messages were cut
  uint64_t polyvalue_installs = 0;
  uint64_t polytxns = 0;
  // Effective parameters measured from the run, and the model evaluated
  // at them.
  double effective_update_rate = 0;  // committed updates per second
  double model_prediction = 0;
};

EngineValidationReport RunEngineValidation(
    const EngineValidationParams& params);

}  // namespace polyvalue

#endif  // SRC_BASELINE_ENGINE_VALIDATION_H_
