#include "src/baseline/engine_validation.h"

#include <unordered_map>
#include <unordered_set>

#include "src/common/strings.h"
#include "src/txn/messages.h"
#include "src/workload/distribution.h"

namespace polyvalue {

namespace {

ItemKey KeyOf(uint64_t item) { return StrCat("i", item); }

}  // namespace

EngineValidationReport RunEngineValidation(
    const EngineValidationParams& params) {
  SimCluster::Options options;
  options.site_count = params.sites;
  options.seed = params.seed;
  options.min_delay = 0.002;
  options.max_delay = 0.004;
  options.engine.prepare_timeout = 0.2;
  options.engine.ready_timeout = 0.2;
  // Short in-doubt window so a stranded transaction becomes a polyvalue
  // promptly (the paper's model counts an item uncertain from the moment
  // of the failure).
  options.engine.wait_timeout = 0.05;
  // Inquiry much faster than recovery: the outage length is governed by
  // the injected Exp(1/R), not by polling granularity.
  options.engine.inquiry_interval =
      std::min(0.5, 0.1 / params.recovery_rate);
  // Every update must run the distributed protocol (strandable).
  options.engine.enable_local_fast_path = false;
  SimCluster cluster(options);

  // Load the database.
  for (uint64_t item = 0; item < params.items; ++item) {
    cluster.Load(item % params.sites, KeyOf(item), Value::Int(0));
  }

  // --- per-transaction failure injection -----------------------------
  // First time a COMPLETE/ABORT for txn passes the filter gate, decide
  // (pseudo-randomly, from the txn id) whether this transaction fails;
  // failed transactions get a recovery deadline Exp(1/R) in the future,
  // and every outcome-bearing message for them is dropped until then.
  struct Strand {
    double recover_at;
  };
  std::unordered_map<uint64_t, Strand> strands;
  std::unordered_set<uint64_t> evaluated;
  uint64_t stranded_count = 0;
  Rng fault_rng(params.seed ^ 0x5deece66dULL);
  Simulator& sim = cluster.sim();

  cluster.transport().set_filter([&](const Packet& packet) {
    // Cheap peek: only decode protocol messages once (tag + txn live at
    // the head of the encoding).
    const Result<Message> msg = Message::Decode(packet.payload);
    if (!msg.ok()) {
      return true;
    }
    const MsgType type = msg->type;
    if (type != MsgType::kComplete && type != MsgType::kAbort &&
        type != MsgType::kOutcomeReply && type != MsgType::kOutcomeNotify) {
      return true;
    }
    const uint64_t txn = msg->txn.value();
    // Only COMMIT decisions can strand an update into a polyvalue (an
    // aborted transaction installs nothing); evaluating F on commits
    // keeps the injected failure rate aligned with the model's F.
    if (type == MsgType::kComplete && evaluated.insert(txn).second) {
      if (fault_rng.NextBool(params.failure_probability)) {
        ++stranded_count;
        strands[txn] = {sim.now() +
                        fault_rng.NextExponential(1.0 /
                                                  params.recovery_rate)};
      }
    }
    auto it = strands.find(txn);
    if (it != strands.end() && sim.now() < it->second.recover_at) {
      return false;  // outcome unreachable: the failure is outstanding
    }
    return true;
  });

  // --- workload -------------------------------------------------------
  EngineValidationReport report;
  Rng workload_rng(params.seed * 2654435761ULL + 1);
  const KeyDistribution item_dist(KeyDistParams{}, params.items);
  const double horizon = params.warmup_seconds + params.measure_seconds;

  std::function<void()> pump = [&] {
    if (sim.now() > horizon) {
      return;
    }
    sim.After(workload_rng.NextExponential(1.0 /
                                           params.updates_per_second),
              [&] {
                pump();
                // Target item + d extra read items (shared §4.2 idiom:
                // exponential degree, probabilistically rounded).
                const uint64_t target = item_dist.Pick(&workload_rng);
                const uint64_t d = DrawExponentialCount(
                    &workload_rng, params.dependency_degree);
                const bool overwrite = workload_rng.NextBool(
                    params.overwrite_probability);
                const int64_t salt = workload_rng.NextInt(1, 1000);

                TxnSpec spec;
                const ItemKey target_key = KeyOf(target);
                spec.Write(target_key,
                           cluster.site_id(target % params.sites));
                if (!overwrite) {
                  spec.Read(target_key,
                            cluster.site_id(target % params.sites));
                }
                std::vector<ItemKey> dep_keys;
                for (uint64_t k = 0; k < d; ++k) {
                  const uint64_t dep = item_dist.Pick(&workload_rng);
                  if (dep == target) {
                    continue;
                  }
                  const ItemKey key = KeyOf(dep);
                  spec.Read(key, cluster.site_id(dep % params.sites));
                  dep_keys.push_back(key);
                }
                spec.Logic([target_key, dep_keys, overwrite,
                            salt](const TxnReads& reads) {
                  int64_t acc = salt;
                  for (const ItemKey& key : dep_keys) {
                    acc += reads.IntAt(key);
                  }
                  if (!overwrite) {
                    acc += reads.IntAt(target_key);
                  }
                  TxnEffect e;
                  e.writes[target_key] = Value::Int(acc % 1000000);
                  return e;
                });

                ++report.submitted;
                const size_t coordinator =
                    workload_rng.NextBelow(params.sites);
                cluster.Submit(coordinator, std::move(spec),
                               [&report](const TxnResult& r) {
                                 if (r.committed()) {
                                   ++report.committed;
                                 } else {
                                   ++report.aborted;
                                 }
                               });
              });
  };
  pump();

  // --- P(t) sampling ---------------------------------------------------
  double sample_sum = 0;
  uint64_t sample_count = 0;
  std::function<void()> sample = [&] {
    if (sim.now() > horizon) {
      return;
    }
    if (sim.now() >= params.warmup_seconds) {
      const double p =
          static_cast<double>(cluster.TotalUncertainItems());
      sample_sum += p;
      ++sample_count;
      report.peak_uncertain_items =
          std::max(report.peak_uncertain_items, p);
    }
    sim.After(params.sample_interval, sample);
  };
  sample();

  cluster.RunFor(horizon + 1.0);

  report.avg_uncertain_items =
      sample_count == 0 ? 0.0 : sample_sum / sample_count;
  report.stranded = stranded_count;
  const EngineMetrics metrics = cluster.TotalMetrics();
  report.polyvalue_installs = metrics.polyvalue_installs;
  report.polytxns = metrics.polytxns;
  report.effective_update_rate =
      static_cast<double>(report.committed) /
      (params.warmup_seconds + params.measure_seconds);

  ModelParams model;
  model.updates_per_second = report.effective_update_rate;
  model.failure_probability = params.failure_probability;
  model.items = static_cast<double>(params.items);
  model.recovery_rate = params.recovery_rate;
  model.overwrite_probability = params.overwrite_probability;
  model.dependency_degree = params.dependency_degree;
  const Prediction pred = Predict(model);
  report.model_prediction = pred.stable ? pred.steady_state : -1;
  return report;
}

}  // namespace polyvalue
