// Failure-injection transfer workload (the availability benches'
// harness), expressed on the src/workload generators.
//
// Drives a SimCluster with a funds-transfer workload while crashing and
// recovering a coordinator site, then audits the outcome. This is the
// machinery behind the availability benches (experiment X1 in
// DESIGN.md): the same schedule runs under each in-doubt policy —
//
//   kPolyvalue : the paper's mechanism,
//   kBlock     : classic blocking 2PC (§2.2),
//   kArbitrary : relaxed consistency (§2.3),
//
// and the report quantifies what the paper argues qualitatively: commit
// throughput while a failure is outstanding, item availability, and
// (for kArbitrary) atomicity violations via a conservation audit —
// transfers preserve total balance, so any drift is a violation.
//
// Arrivals come from an ArrivalProcess (arrival.h) and account picks
// from a KeyDistribution (distribution.h); this file owns no generator
// logic of its own. For mixed shapes, skewed keys, admission control,
// and virtual-client scale, use ClusterWorkload (driver.h) instead —
// this harness deliberately keeps the raw-cluster form (no front door)
// so the availability comparison measures the PROTOCOLS, not the
// serving layer.
#ifndef SRC_WORKLOAD_TRANSFER_H_
#define SRC_WORKLOAD_TRANSFER_H_

#include <cstdint>
#include <string>

#include "src/common/stats.h"
#include "src/system/cluster.h"

namespace polyvalue {

struct WorkloadParams {
  size_t sites = 4;
  size_t accounts_per_site = 32;
  int64_t initial_balance = 1000;
  double txn_rate = 40;       // submissions per second, cluster-wide
  double duration = 30;       // seconds of offered load
  double settle_time = 30;    // quiescence window after healing
  uint64_t seed = 7;
  EngineConfig engine;

  // Failure schedule: `crash_site` goes down while coordinating traffic.
  // With crash_cycles > 1 the site flaps: it crashes at crash_time, stays
  // down for (recover_time - crash_time), comes back for `up_gap`
  // seconds, and repeats — each crash instant is another chance to catch
  // transactions in the in-doubt window.
  size_t crash_site = 0;
  double crash_time = 8;
  double recover_time = 20;   // > duration disables recovery mid-run
  int crash_cycles = 1;
  double up_gap = 1.0;

  // Fraction of transfers that cross sites (both-local otherwise).
  double cross_site_fraction = 0.75;

  // One-way link latency range (seconds). Longer links widen the
  // vulnerable window between READY and COMPLETE, making coordinator
  // crashes strand more participants.
  double min_delay = 0.005;
  double max_delay = 0.015;
};

struct WorkloadReport {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t rejected_down = 0;     // submissions refused (site down)
  uint64_t no_response = 0;       // callback never fired (orphaned)

  // Activity inside the [crash, recover] window.
  uint64_t outage_submitted = 0;
  uint64_t outage_committed = 0;
  uint64_t outage_aborted = 0;

  RunningStat latency;            // seconds, completed txns
  RunningStat outage_latency;

  uint64_t uncertain_outputs = 0;
  uint64_t polyvalue_installs = 0;
  uint64_t final_uncertain_items = 0;  // after settle: should be 0

  // Conservation audit: initial total minus final total balance. Nonzero
  // means atomicity was violated (expected only under kArbitrary).
  int64_t conservation_drift = 0;
  bool all_items_certain = false;

  EngineMetrics metrics;

  std::string Summary() const;
};

WorkloadReport RunTransferWorkload(const WorkloadParams& params);

}  // namespace polyvalue

#endif  // SRC_WORKLOAD_TRANSFER_H_
