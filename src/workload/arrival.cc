#include "src/workload/arrival.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace polyvalue {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

const char* ArrivalCurveKindName(ArrivalCurveKind kind) {
  switch (kind) {
    case ArrivalCurveKind::kConstant:
      return "constant";
    case ArrivalCurveKind::kPoisson:
      return "poisson";
    case ArrivalCurveKind::kDiurnal:
      return "diurnal";
    case ArrivalCurveKind::kHerd:
      return "herd";
  }
  return "unknown";
}

ArrivalProcess::ArrivalProcess(ArrivalParams params, uint64_t seed)
    : params_(params), rng_(seed) {
  POLYV_CHECK_GT(params_.rate, 0.0);
  if (params_.kind == ArrivalCurveKind::kDiurnal) {
    POLYV_CHECK_GE(params_.diurnal_amplitude, 0.0);
    POLYV_CHECK_LT(params_.diurnal_amplitude, 1.0);
    POLYV_CHECK_GT(params_.diurnal_period, 0.0);
  }
  if (params_.kind == ArrivalCurveKind::kHerd) {
    POLYV_CHECK_GE(params_.herd_background_fraction, 0.0);
    POLYV_CHECK_LE(params_.herd_background_fraction, 1.0);
    POLYV_CHECK_GT(params_.herd_interval, 0.0);
    POLYV_CHECK_GE(params_.herd_spread, 0.0);
    // Bursts must not overlap, or Next() would run backwards.
    POLYV_CHECK_LT(params_.herd_spread, params_.herd_interval);
    const double background_rate =
        params_.rate * params_.herd_background_fraction;
    next_background_ = background_rate > 0.0
                           ? rng_.NextExponential(1.0 / background_rate)
                           : -1.0;
    FillBurst();
  }
}

void ArrivalProcess::FillBurst() {
  // Burst k fires at (k + 1) * herd_interval; its size is the herd share
  // of the long-run rate accumulated over one interval.
  const double herd_rate =
      params_.rate * (1.0 - params_.herd_background_fraction);
  const uint64_t size = static_cast<uint64_t>(
      std::llround(herd_rate * params_.herd_interval));
  const double start =
      static_cast<double>(burst_index_ + 1) * params_.herd_interval;
  burst_.clear();
  burst_.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    burst_.push_back(start + rng_.NextDouble() * params_.herd_spread);
  }
  std::sort(burst_.begin(), burst_.end());
  burst_cursor_ = 0;
}

double ArrivalProcess::Next() {
  switch (params_.kind) {
    case ArrivalCurveKind::kConstant:
      last_ += 1.0 / params_.rate;
      return last_;
    case ArrivalCurveKind::kPoisson:
      last_ += rng_.NextExponential(1.0 / params_.rate);
      return last_;
    case ArrivalCurveKind::kDiurnal: {
      // Thinning (Lewis & Shedler): candidates at the envelope peak
      // rate, accepted with probability rate(t) / peak.
      const double peak =
          params_.rate * (1.0 + params_.diurnal_amplitude);
      for (;;) {
        last_ += rng_.NextExponential(1.0 / peak);
        const double rate_now =
            params_.rate *
            (1.0 + params_.diurnal_amplitude *
                       std::sin(kTwoPi * last_ / params_.diurnal_period));
        if (rng_.NextBool(rate_now / peak)) {
          return last_;
        }
      }
    }
    case ArrivalCurveKind::kHerd: {
      for (;;) {
        // Exhausted the current burst: materialise the next one so its
        // times are available for the min() below.
        if (burst_cursor_ >= burst_.size()) {
          ++burst_index_;
          FillBurst();
          if (burst_.empty() && next_background_ < 0.0) {
            // Degenerate configuration (no background, empty bursts):
            // fall back to plain Poisson so Next() always advances.
            last_ += rng_.NextExponential(1.0 / params_.rate);
            return last_;
          }
          if (burst_.empty()) {
            // All-background configuration: burst stream never fires.
            break;
          }
        }
        if (next_background_ >= 0.0 &&
            next_background_ <= burst_[burst_cursor_]) {
          break;  // background stream fires first
        }
        last_ = burst_[burst_cursor_++];
        return last_;
      }
      last_ = next_background_;
      const double background_rate =
          params_.rate * params_.herd_background_fraction;
      next_background_ += rng_.NextExponential(1.0 / background_rate);
      return last_;
    }
  }
  POLYV_CHECK(false);
  return last_;
}

}  // namespace polyvalue
