#include "src/workload/transfer.h"

#include <sstream>
#include <vector>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/workload/arrival.h"
#include "src/workload/distribution.h"

namespace polyvalue {

namespace {

ItemKey AccountKey(size_t site, size_t index) {
  return StrCat("acct/", site, "/", index);
}

// A transfer: move `amount` from one account to another if funds allow.
TxnSpec MakeTransfer(const ItemKey& from_key, SiteId from_site,
                     const ItemKey& to_key, SiteId to_site, int64_t amount) {
  TxnSpec spec;
  spec.ReadWrite(from_key, from_site);
  spec.ReadWrite(to_key, to_site);
  spec.Logic([from_key, to_key, amount](const TxnReads& reads) {
    const int64_t from_balance = reads.IntAt(from_key);
    if (from_balance < amount) {
      return TxnEffect::Abort("insufficient funds");
    }
    TxnEffect effect;
    effect.writes[from_key] = Value::Int(from_balance - amount);
    effect.writes[to_key] = Value::Int(reads.IntAt(to_key) + amount);
    effect.output = Value::Bool(true);
    return effect;
  });
  return spec;
}

}  // namespace

std::string WorkloadReport::Summary() const {
  std::ostringstream oss;
  oss << "submitted=" << submitted << " committed=" << committed
      << " aborted=" << aborted << " no_response=" << no_response
      << " | outage: submitted=" << outage_submitted
      << " committed=" << outage_committed
      << " aborted=" << outage_aborted
      << " | uncertain_outputs=" << uncertain_outputs
      << " poly_installs=" << polyvalue_installs
      << " drift=" << conservation_drift
      << " certain=" << (all_items_certain ? "yes" : "NO");
  return oss.str();
}

WorkloadReport RunTransferWorkload(const WorkloadParams& params) {
  SimCluster::Options options;
  options.site_count = params.sites;
  options.engine = params.engine;
  options.seed = params.seed;
  options.min_delay = params.min_delay;
  options.max_delay = params.max_delay;
  SimCluster cluster(options);

  // Seed accounts.
  for (size_t s = 0; s < params.sites; ++s) {
    for (size_t a = 0; a < params.accounts_per_site; ++a) {
      cluster.Load(s, AccountKey(s, a), Value::Int(params.initial_balance));
    }
  }
  const int64_t initial_total =
      params.initial_balance *
      static_cast<int64_t>(params.sites * params.accounts_per_site);

  WorkloadReport report;
  // Poisson offered load from the shared arrival generator; account and
  // site picks from the shared distribution machinery.
  ArrivalParams arrival_params;
  arrival_params.kind = ArrivalCurveKind::kPoisson;
  arrival_params.rate = params.txn_rate;
  ArrivalProcess arrivals(arrival_params,
                          params.seed ^ 0x9e3779b97f4a7c15ULL);
  KeyDistParams uniform;
  const KeyDistribution account_dist(uniform, params.accounts_per_site);
  Rng workload_rng(params.seed * 0x9e3779b97f4a7c15ULL + 1);
  Simulator& sim = cluster.sim();

  // Failure schedule: crash_cycles crash/recover cycles.
  const double outage_length = params.recover_time - params.crash_time;
  std::vector<std::pair<double, double>> outages;
  for (int cycle = 0; cycle < params.crash_cycles; ++cycle) {
    const double down_at =
        params.crash_time + cycle * (outage_length + params.up_gap);
    const double up_at = down_at + outage_length;
    outages.emplace_back(down_at, up_at);
    sim.At(down_at, [&cluster, &params] {
      cluster.CrashSite(params.crash_site);
    });
    if (up_at < params.duration + params.settle_time) {
      sim.At(up_at, [&cluster, &params] {
        cluster.RecoverSite(params.crash_site);
      });
    }
  }
  auto in_any_outage = [&outages](double t) {
    for (const auto& [down, up] : outages) {
      if (t >= down && t < up) {
        return true;
      }
    }
    return false;
  };

  // Offered load: open-loop arrivals until `duration`.
  uint64_t outstanding = 0;
  std::function<void(double)> pump = [&](double at) {
    sim.At(at, [&]() {
      const double next = arrivals.Next();
      if (next <= params.duration) {
        pump(next);
      }
      const bool in_outage = in_any_outage(sim.now());
      // Pick coordinator among alive sites (clients notice a dead node).
      size_t coordinator = workload_rng.NextBelow(params.sites);
      if (cluster.site(coordinator).crashed()) {
        ++report.rejected_down;
        coordinator = (coordinator + 1) % params.sites;
        if (cluster.site(coordinator).crashed()) {
          return;
        }
      }
      // Pick two distinct accounts.
      const size_t from_site = workload_rng.NextBelow(params.sites);
      size_t to_site = from_site;
      if (workload_rng.NextBool(params.cross_site_fraction)) {
        while (to_site == from_site && params.sites > 1) {
          to_site = workload_rng.NextBelow(params.sites);
        }
      }
      const size_t from_acct = account_dist.Pick(&workload_rng);
      size_t to_acct = account_dist.Pick(&workload_rng);
      if (from_site == to_site && to_acct == from_acct) {
        to_acct = (to_acct + 1) % params.accounts_per_site;
      }
      const int64_t amount =
          static_cast<int64_t>(workload_rng.NextInt(1, 20));

      ++report.submitted;
      if (in_outage) {
        ++report.outage_submitted;
      }
      const double submit_time = sim.now();
      ++outstanding;
      cluster.Submit(
          coordinator,
          MakeTransfer(AccountKey(from_site, from_acct),
                       cluster.site_id(from_site),
                       AccountKey(to_site, to_acct),
                       cluster.site_id(to_site), amount),
          [&, submit_time, in_outage](const TxnResult& r) {
            --outstanding;
            const double latency = sim.now() - submit_time;
            report.latency.Add(latency);
            if (in_outage) {
              report.outage_latency.Add(latency);
            }
            if (r.committed()) {
              ++report.committed;
              if (in_outage) {
                ++report.outage_committed;
              }
              if (!r.output.is_certain()) {
                ++report.uncertain_outputs;
              }
            } else {
              ++report.aborted;
              if (in_outage) {
                ++report.outage_aborted;
              }
            }
          });
    });
  };
  const double first = arrivals.Next();
  if (first <= params.duration) {
    pump(first);
  }

  // Run offered load plus the settle window (everything heals at the
  // start of settling so uncertainty can drain).
  cluster.RunFor(params.duration);
  for (size_t s = 0; s < params.sites; ++s) {
    if (cluster.site(s).crashed()) {
      cluster.RecoverSite(s);
    }
  }
  cluster.faults().HealAll();
  cluster.RunFor(params.settle_time);

  // Audit.
  report.no_response = outstanding;
  report.final_uncertain_items = cluster.TotalUncertainItems();
  report.all_items_certain = report.final_uncertain_items == 0;
  int64_t final_total = 0;
  bool totals_exact = true;
  for (size_t s = 0; s < params.sites; ++s) {
    cluster.site(s).store().ForEach(
        [&](const ItemKey& key, const PolyValue& value) {
          (void)key;
          if (value.is_certain() && value.certain_value().is_int()) {
            final_total += value.certain_value().int_value();
          } else {
            totals_exact = false;
          }
        });
  }
  report.conservation_drift =
      totals_exact ? final_total - initial_total : INT64_MAX;
  report.metrics = cluster.TotalMetrics();
  report.polyvalue_installs = report.metrics.polyvalue_installs;
  return report;
}

}  // namespace polyvalue
