#include "src/workload/distribution.h"

#include <cmath>

#include "src/common/check.h"

namespace polyvalue {

const char* KeyDistKindName(KeyDistKind kind) {
  switch (kind) {
    case KeyDistKind::kUniform:
      return "uniform";
    case KeyDistKind::kZipfian:
      return "zipfian";
    case KeyDistKind::kHotSet:
      return "hotset";
  }
  return "unknown";
}

KeyDistribution::KeyDistribution(KeyDistParams params, uint64_t universe)
    : params_(params), universe_(universe) {
  POLYV_CHECK_GT(universe, 0u);
  switch (params_.kind) {
    case KeyDistKind::kUniform:
      break;
    case KeyDistKind::kZipfian: {
      POLYV_CHECK_GT(params_.zipf_theta, 0.0);
      POLYV_CHECK_LT(params_.zipf_theta, 1.0);
      const double theta = params_.zipf_theta;
      double zeta2 = 0.0;
      for (uint64_t i = 1; i <= universe_; ++i) {
        zeta_ += 1.0 / std::pow(static_cast<double>(i), theta);
        if (i <= 2) {
          zeta2 = zeta_;
        }
      }
      alpha_ = 1.0 / (1.0 - theta);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(universe_),
                             1.0 - theta)) /
             (1.0 - zeta2 / zeta_);
      break;
    }
    case KeyDistKind::kHotSet: {
      POLYV_CHECK_GE(params_.hot_fraction, 0.0);
      POLYV_CHECK_LE(params_.hot_fraction, 1.0);
      POLYV_CHECK_GE(params_.hot_probability, 0.0);
      POLYV_CHECK_LE(params_.hot_probability, 1.0);
      hot_count_ = static_cast<uint64_t>(
          std::ceil(params_.hot_fraction * static_cast<double>(universe_)));
      if (hot_count_ > universe_) {
        hot_count_ = universe_;
      }
      break;
    }
  }
}

uint64_t KeyDistribution::Pick(Rng* rng) const {
  switch (params_.kind) {
    case KeyDistKind::kUniform:
      return rng->NextBelow(universe_);
    case KeyDistKind::kZipfian: {
      const double theta = params_.zipf_theta;
      const double u = rng->NextDouble();
      const double uz = u * zeta_;
      if (uz < 1.0) {
        return 0;
      }
      if (uz < 1.0 + std::pow(0.5, theta)) {
        return 1;
      }
      const uint64_t rank = static_cast<uint64_t>(
          static_cast<double>(universe_) *
          std::pow(eta_ * u - eta_ + 1.0, alpha_));
      return rank >= universe_ ? universe_ - 1 : rank;
    }
    case KeyDistKind::kHotSet: {
      // Degenerate splits (no hot set, or all-hot) fall back to uniform
      // over whichever population exists.
      if (hot_count_ == 0 || hot_count_ == universe_) {
        return rng->NextBelow(universe_);
      }
      if (rng->NextBool(params_.hot_probability)) {
        return rng->NextBelow(hot_count_);
      }
      return hot_count_ + rng->NextBelow(universe_ - hot_count_);
    }
  }
  POLYV_CHECK(false);
  return 0;
}

double KeyDistribution::Probability(uint64_t index) const {
  POLYV_CHECK_LT(index, universe_);
  switch (params_.kind) {
    case KeyDistKind::kUniform:
      return 1.0 / static_cast<double>(universe_);
    case KeyDistKind::kZipfian:
      return 1.0 /
             (std::pow(static_cast<double>(index + 1), params_.zipf_theta) *
              zeta_);
    case KeyDistKind::kHotSet: {
      if (hot_count_ == 0 || hot_count_ == universe_) {
        return 1.0 / static_cast<double>(universe_);
      }
      if (index < hot_count_) {
        return params_.hot_probability / static_cast<double>(hot_count_);
      }
      return (1.0 - params_.hot_probability) /
             static_cast<double>(universe_ - hot_count_);
    }
  }
  POLYV_CHECK(false);
  return 0.0;
}

uint64_t DrawExponentialCount(Rng* rng, double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  const double draw = rng->NextExponential(mean);
  uint64_t count = static_cast<uint64_t>(draw);
  // Probabilistic rounding keeps E[count] == mean exactly.
  if (rng->NextBool(draw - static_cast<double>(count))) {
    ++count;
  }
  return count;
}

}  // namespace polyvalue
