#include "src/workload/mix.h"

#include "src/common/check.h"
#include "src/common/strings.h"

namespace polyvalue {

const char* TxnShapeKindName(TxnShapeKind kind) {
  switch (kind) {
    case TxnShapeKind::kReadOnly:
      return "read_only";
    case TxnShapeKind::kTransfer:
      return "transfer";
    case TxnShapeKind::kIncrement:
      return "increment";
    case TxnShapeKind::kMultiTransfer:
      return "multi_transfer";
  }
  return "unknown";
}

MixParams ReadHeavyMix() { return {0.80, 0.10, 0.05, 0.05}; }
MixParams WriteHeavyMix() { return {0.10, 0.60, 0.10, 0.20}; }
MixParams IncrementHeavyMix() { return {0.05, 0.10, 0.80, 0.05}; }
MixParams MultiSiteMix() { return {0.15, 0.25, 0.10, 0.50}; }

TxnMix::TxnMix(MixParams params) {
  const double weights[kTxnShapeCount] = {
      params.read_only, params.transfer, params.increment,
      params.multi_transfer};
  total_ = 0.0;
  for (int i = 0; i < kTxnShapeCount; ++i) {
    POLYV_CHECK_GE(weights[i], 0.0);
    total_ += weights[i];
    cumulative_[i] = total_;
  }
  POLYV_CHECK_GT(total_, 0.0);
}

TxnShapeKind TxnMix::Pick(Rng* rng) const {
  const double draw = rng->NextDouble() * total_;
  for (int i = 0; i + 1 < kTxnShapeCount; ++i) {
    if (draw < cumulative_[i]) {
      return static_cast<TxnShapeKind>(i);
    }
  }
  return static_cast<TxnShapeKind>(kTxnShapeCount - 1);
}

double TxnMix::weight(TxnShapeKind kind) const {
  const int i = static_cast<int>(kind);
  return (cumulative_[i] - (i == 0 ? 0.0 : cumulative_[i - 1])) / total_;
}

Keyspace::Keyspace(size_t sites, uint64_t keys)
    : sites_(sites), keys_(keys) {
  POLYV_CHECK_GT(sites, 0u);
  POLYV_CHECK_GE(keys, static_cast<uint64_t>(kTxnShapeCount));
}

ItemKey Keyspace::name(uint64_t key) const {
  return StrCat("w/", site_index(key), "/", key);
}

void Keyspace::LoadAll(SimCluster* cluster, int64_t initial_balance) const {
  for (uint64_t k = 0; k < keys_; ++k) {
    cluster->Load(site_index(k), name(k), Value::Int(initial_balance));
  }
}

namespace {

// Draws a key distinct from everything in `taken` (linear probing after
// a few distribution draws, so pathological skew cannot loop forever).
uint64_t PickDistinct(const KeyDistribution& dist, Rng* rng,
                      const uint64_t* taken, int taken_count) {
  uint64_t key = dist.Pick(rng);
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool clash = false;
    for (int i = 0; i < taken_count; ++i) {
      clash = clash || taken[i] == key;
    }
    if (!clash) {
      return key;
    }
    key = attempt < 4 ? dist.Pick(rng) : (key + 1) % dist.universe();
  }
  return key;
}

}  // namespace

TxnSpec MakeShapeSpec(TxnShapeKind shape, const Keyspace& keyspace,
                      const SimCluster& cluster,
                      const KeyDistribution& dist, Rng* rng,
                      int64_t* delta) {
  POLYV_CHECK_EQ(dist.universe(), keyspace.keys());
  *delta = 0;
  TxnSpec spec;
  switch (shape) {
    case TxnShapeKind::kReadOnly: {
      uint64_t a = dist.Pick(rng);
      uint64_t b = PickDistinct(dist, rng, &a, 1);
      const ItemKey ka = keyspace.name(a);
      const ItemKey kb = keyspace.name(b);
      spec.Read(ka, cluster.site_id(keyspace.site_index(a)));
      spec.Read(kb, cluster.site_id(keyspace.site_index(b)));
      spec.Logic([ka, kb](const TxnReads& reads) {
        TxnEffect e;
        e.output = Value::Int(reads.IntAt(ka) + reads.IntAt(kb));
        return e;
      });
      return spec;
    }
    case TxnShapeKind::kTransfer: {
      uint64_t from = dist.Pick(rng);
      uint64_t to = PickDistinct(dist, rng, &from, 1);
      const int64_t amount = rng->NextInt(1, 20);
      const ItemKey from_key = keyspace.name(from);
      const ItemKey to_key = keyspace.name(to);
      spec.ReadWrite(from_key, cluster.site_id(keyspace.site_index(from)));
      spec.ReadWrite(to_key, cluster.site_id(keyspace.site_index(to)));
      spec.Logic([from_key, to_key, amount](const TxnReads& reads) {
        const int64_t have = reads.IntAt(from_key);
        if (have < amount) {
          return TxnEffect::Abort("insufficient funds");
        }
        TxnEffect e;
        e.writes[from_key] = Value::Int(have - amount);
        e.writes[to_key] = Value::Int(reads.IntAt(to_key) + amount);
        e.output = Value::Bool(true);
        return e;
      });
      return spec;
    }
    case TxnShapeKind::kIncrement: {
      const uint64_t target = dist.Pick(rng);
      const int64_t amount = rng->NextInt(1, 5);
      *delta = amount;
      const ItemKey key = keyspace.name(target);
      spec.ReadWrite(key, cluster.site_id(keyspace.site_index(target)));
      spec.Logic([key, amount](const TxnReads& reads) {
        TxnEffect e;
        e.writes[key] = Value::Int(reads.IntAt(key) + amount);
        e.output = Value::Int(reads.IntAt(key) + amount);
        return e;
      });
      return spec;
    }
    case TxnShapeKind::kMultiTransfer: {
      uint64_t from = dist.Pick(rng);
      uint64_t taken[2] = {from, 0};
      const uint64_t to_a = PickDistinct(dist, rng, taken, 1);
      taken[1] = to_a;
      const uint64_t to_b = PickDistinct(dist, rng, taken, 2);
      const int64_t amount = rng->NextInt(1, 10);
      const ItemKey from_key = keyspace.name(from);
      const ItemKey a_key = keyspace.name(to_a);
      const ItemKey b_key = keyspace.name(to_b);
      spec.ReadWrite(from_key, cluster.site_id(keyspace.site_index(from)));
      spec.ReadWrite(a_key, cluster.site_id(keyspace.site_index(to_a)));
      spec.ReadWrite(b_key, cluster.site_id(keyspace.site_index(to_b)));
      spec.Logic([from_key, a_key, b_key, amount](const TxnReads& reads) {
        const int64_t have = reads.IntAt(from_key);
        if (have < 2 * amount) {
          return TxnEffect::Abort("insufficient funds");
        }
        TxnEffect e;
        e.writes[from_key] = Value::Int(have - 2 * amount);
        e.writes[a_key] = Value::Int(reads.IntAt(a_key) + amount);
        e.writes[b_key] = Value::Int(reads.IntAt(b_key) + amount);
        e.output = Value::Bool(true);
        return e;
      });
      return spec;
    }
  }
  POLYV_CHECK(false);
  return spec;
}

}  // namespace polyvalue
