#include "src/workload/mix.h"

#include "src/common/check.h"
#include "src/common/strings.h"

namespace polyvalue {

const char* TxnShapeKindName(TxnShapeKind kind) {
  switch (kind) {
    case TxnShapeKind::kReadOnly:
      return "read_only";
    case TxnShapeKind::kTransfer:
      return "transfer";
    case TxnShapeKind::kIncrement:
      return "increment";
    case TxnShapeKind::kMultiTransfer:
      return "multi_transfer";
  }
  return "unknown";
}

MixParams ReadHeavyMix() { return {0.80, 0.10, 0.05, 0.05}; }
MixParams WriteHeavyMix() { return {0.10, 0.60, 0.10, 0.20}; }
MixParams IncrementHeavyMix() { return {0.05, 0.10, 0.80, 0.05}; }
MixParams MultiSiteMix() { return {0.15, 0.25, 0.10, 0.50}; }

TxnMix::TxnMix(MixParams params) {
  const double weights[kTxnShapeCount] = {
      params.read_only, params.transfer, params.increment,
      params.multi_transfer};
  total_ = 0.0;
  for (int i = 0; i < kTxnShapeCount; ++i) {
    POLYV_CHECK_GE(weights[i], 0.0);
    total_ += weights[i];
    cumulative_[i] = total_;
  }
  POLYV_CHECK_GT(total_, 0.0);
}

TxnShapeKind TxnMix::Pick(Rng* rng) const {
  const double draw = rng->NextDouble() * total_;
  for (int i = 0; i + 1 < kTxnShapeCount; ++i) {
    if (draw < cumulative_[i]) {
      return static_cast<TxnShapeKind>(i);
    }
  }
  return static_cast<TxnShapeKind>(kTxnShapeCount - 1);
}

double TxnMix::weight(TxnShapeKind kind) const {
  const int i = static_cast<int>(kind);
  return (cumulative_[i] - (i == 0 ? 0.0 : cumulative_[i - 1])) / total_;
}

Keyspace::Keyspace(size_t sites, uint64_t keys)
    : sites_(sites), keys_(keys) {
  POLYV_CHECK_GT(sites, 0u);
  POLYV_CHECK_GE(keys, static_cast<uint64_t>(kTxnShapeCount));
}

ItemKey Keyspace::name(uint64_t key) const {
  return StrCat("w/", site_index(key), "/", key);
}

void Keyspace::LoadAll(SimCluster* cluster, int64_t initial_balance) const {
  for (uint64_t k = 0; k < keys_; ++k) {
    cluster->Load(site_index(k), name(k), Value::Int(initial_balance));
  }
}

namespace {

// Draws a key distinct from everything in `taken` (linear probing after
// a few distribution draws, so pathological skew cannot loop forever).
uint64_t PickDistinct(const KeyDistribution& dist, Rng* rng,
                      const uint64_t* taken, int taken_count) {
  uint64_t key = dist.Pick(rng);
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool clash = false;
    for (int i = 0; i < taken_count; ++i) {
      clash = clash || taken[i] == key;
    }
    if (!clash) {
      return key;
    }
    key = attempt < 4 ? dist.Pick(rng) : (key + 1) % dist.universe();
  }
  return key;
}

}  // namespace

SiteId PreferredCopy(const ReplicaSet& replicas, SiteId coordinator) {
  for (SiteId site : replicas.sites()) {
    if (site == coordinator) {
      return site;
    }
  }
  return replicas.sites().front();
}

namespace {

// One "<logical>=<value>" output entry.
std::string Entry(const std::string& logical, int64_t value) {
  return StrCat(logical, "=", value);
}

// Adds every copy of `replicas` to the write set and returns the copy
// keys (writes must cover them all).
std::vector<ItemKey> WriteCopies(const ReplicaSet& replicas,
                                 TxnSpec* spec) {
  replicas.AddToWriteSet(spec);
  std::vector<ItemKey> keys;
  keys.reserve(replicas.size());
  for (SiteId site : replicas.sites()) {
    keys.push_back(replicas.KeyAt(site));
  }
  return keys;
}

}  // namespace

TxnSpec MakeReplicatedShapeSpec(TxnShapeKind shape,
                                const ReplicaCatalog& catalog,
                                SiteId coordinator,
                                const KeyDistribution& dist, Rng* rng,
                                int64_t* delta) {
  POLYV_CHECK_EQ(dist.universe(), catalog.size());
  *delta = 0;
  TxnSpec spec;
  switch (shape) {
    case TxnShapeKind::kReadOnly: {
      uint64_t a = dist.Pick(rng);
      uint64_t b = PickDistinct(dist, rng, &a, 1);
      const ReplicaSet& ra = catalog.at(a);
      const ReplicaSet& rb = catalog.at(b);
      const SiteId pa = PreferredCopy(ra, coordinator);
      const SiteId pb = PreferredCopy(rb, coordinator);
      ra.AddToReadSet(&spec, pa);
      rb.AddToReadSet(&spec, pb);
      const ItemKey ka = ra.KeyAt(pa);
      const ItemKey kb = rb.KeyAt(pb);
      spec.Logic([ka, kb, la = ra.logical_name(),
                  lb = rb.logical_name()](const TxnReads& reads) {
        TxnEffect e;
        e.output = Value::Str(StrCat(Entry(la, reads.IntAt(ka)), ";",
                                     Entry(lb, reads.IntAt(kb))));
        return e;
      });
      return spec;
    }
    case TxnShapeKind::kTransfer: {
      uint64_t from = dist.Pick(rng);
      uint64_t to = PickDistinct(dist, rng, &from, 1);
      const int64_t amount = rng->NextInt(1, 20);
      const ReplicaSet& rf = catalog.at(from);
      const ReplicaSet& rt = catalog.at(to);
      const std::vector<ItemKey> from_copies = WriteCopies(rf, &spec);
      const std::vector<ItemKey> to_copies = WriteCopies(rt, &spec);
      spec.Logic([from_copies, to_copies, amount, lf = rf.logical_name(),
                  lt = rt.logical_name()](const TxnReads& reads) {
        const int64_t have = reads.IntAt(from_copies.front());
        if (have < amount) {
          return TxnEffect::Abort("insufficient funds");
        }
        const int64_t to_next = reads.IntAt(to_copies.front()) + amount;
        TxnEffect e;
        for (const ItemKey& key : from_copies) {
          e.writes[key] = Value::Int(have - amount);
        }
        for (const ItemKey& key : to_copies) {
          e.writes[key] = Value::Int(to_next);
        }
        e.output = Value::Str(StrCat(Entry(lf, have - amount), ";",
                                     Entry(lt, to_next)));
        return e;
      });
      return spec;
    }
    case TxnShapeKind::kIncrement: {
      const uint64_t target = dist.Pick(rng);
      const int64_t amount = rng->NextInt(1, 5);
      *delta = amount;
      const ReplicaSet& r = catalog.at(target);
      const std::vector<ItemKey> copies = WriteCopies(r, &spec);
      spec.Logic([copies, amount,
                  logical = r.logical_name()](const TxnReads& reads) {
        const int64_t next = reads.IntAt(copies.front()) + amount;
        TxnEffect e;
        for (const ItemKey& key : copies) {
          e.writes[key] = Value::Int(next);
        }
        e.output = Value::Str(Entry(logical, next));
        return e;
      });
      return spec;
    }
    case TxnShapeKind::kMultiTransfer: {
      uint64_t from = dist.Pick(rng);
      uint64_t taken[2] = {from, 0};
      const uint64_t to_a = PickDistinct(dist, rng, taken, 1);
      taken[1] = to_a;
      const uint64_t to_b = PickDistinct(dist, rng, taken, 2);
      const int64_t amount = rng->NextInt(1, 10);
      const ReplicaSet& rf = catalog.at(from);
      const ReplicaSet& ra = catalog.at(to_a);
      const ReplicaSet& rb = catalog.at(to_b);
      const std::vector<ItemKey> from_copies = WriteCopies(rf, &spec);
      const std::vector<ItemKey> a_copies = WriteCopies(ra, &spec);
      const std::vector<ItemKey> b_copies = WriteCopies(rb, &spec);
      spec.Logic([from_copies, a_copies, b_copies, amount,
                  lf = rf.logical_name(), la = ra.logical_name(),
                  lb = rb.logical_name()](const TxnReads& reads) {
        const int64_t have = reads.IntAt(from_copies.front());
        if (have < 2 * amount) {
          return TxnEffect::Abort("insufficient funds");
        }
        const int64_t a_next = reads.IntAt(a_copies.front()) + amount;
        const int64_t b_next = reads.IntAt(b_copies.front()) + amount;
        TxnEffect e;
        for (const ItemKey& key : from_copies) {
          e.writes[key] = Value::Int(have - 2 * amount);
        }
        for (const ItemKey& key : a_copies) {
          e.writes[key] = Value::Int(a_next);
        }
        for (const ItemKey& key : b_copies) {
          e.writes[key] = Value::Int(b_next);
        }
        e.output = Value::Str(StrCat(Entry(lf, have - 2 * amount), ";",
                                     Entry(la, a_next), ";",
                                     Entry(lb, b_next)));
        return e;
      });
      return spec;
    }
  }
  POLYV_CHECK(false);
  return spec;
}

TxnSpec MakeShapeSpec(TxnShapeKind shape, const Keyspace& keyspace,
                      const SimCluster& cluster,
                      const KeyDistribution& dist, Rng* rng,
                      int64_t* delta) {
  POLYV_CHECK_EQ(dist.universe(), keyspace.keys());
  *delta = 0;
  TxnSpec spec;
  switch (shape) {
    case TxnShapeKind::kReadOnly: {
      uint64_t a = dist.Pick(rng);
      uint64_t b = PickDistinct(dist, rng, &a, 1);
      const ItemKey ka = keyspace.name(a);
      const ItemKey kb = keyspace.name(b);
      spec.Read(ka, cluster.site_id(keyspace.site_index(a)));
      spec.Read(kb, cluster.site_id(keyspace.site_index(b)));
      spec.Logic([ka, kb](const TxnReads& reads) {
        TxnEffect e;
        e.output = Value::Int(reads.IntAt(ka) + reads.IntAt(kb));
        return e;
      });
      return spec;
    }
    case TxnShapeKind::kTransfer: {
      uint64_t from = dist.Pick(rng);
      uint64_t to = PickDistinct(dist, rng, &from, 1);
      const int64_t amount = rng->NextInt(1, 20);
      const ItemKey from_key = keyspace.name(from);
      const ItemKey to_key = keyspace.name(to);
      spec.ReadWrite(from_key, cluster.site_id(keyspace.site_index(from)));
      spec.ReadWrite(to_key, cluster.site_id(keyspace.site_index(to)));
      spec.Logic([from_key, to_key, amount](const TxnReads& reads) {
        const int64_t have = reads.IntAt(from_key);
        if (have < amount) {
          return TxnEffect::Abort("insufficient funds");
        }
        TxnEffect e;
        e.writes[from_key] = Value::Int(have - amount);
        e.writes[to_key] = Value::Int(reads.IntAt(to_key) + amount);
        e.output = Value::Bool(true);
        return e;
      });
      return spec;
    }
    case TxnShapeKind::kIncrement: {
      const uint64_t target = dist.Pick(rng);
      const int64_t amount = rng->NextInt(1, 5);
      *delta = amount;
      const ItemKey key = keyspace.name(target);
      spec.ReadWrite(key, cluster.site_id(keyspace.site_index(target)));
      spec.Logic([key, amount](const TxnReads& reads) {
        TxnEffect e;
        e.writes[key] = Value::Int(reads.IntAt(key) + amount);
        e.output = Value::Int(reads.IntAt(key) + amount);
        return e;
      });
      return spec;
    }
    case TxnShapeKind::kMultiTransfer: {
      uint64_t from = dist.Pick(rng);
      uint64_t taken[2] = {from, 0};
      const uint64_t to_a = PickDistinct(dist, rng, taken, 1);
      taken[1] = to_a;
      const uint64_t to_b = PickDistinct(dist, rng, taken, 2);
      const int64_t amount = rng->NextInt(1, 10);
      const ItemKey from_key = keyspace.name(from);
      const ItemKey a_key = keyspace.name(to_a);
      const ItemKey b_key = keyspace.name(to_b);
      spec.ReadWrite(from_key, cluster.site_id(keyspace.site_index(from)));
      spec.ReadWrite(a_key, cluster.site_id(keyspace.site_index(to_a)));
      spec.ReadWrite(b_key, cluster.site_id(keyspace.site_index(to_b)));
      spec.Logic([from_key, a_key, b_key, amount](const TxnReads& reads) {
        const int64_t have = reads.IntAt(from_key);
        if (have < 2 * amount) {
          return TxnEffect::Abort("insufficient funds");
        }
        TxnEffect e;
        e.writes[from_key] = Value::Int(have - 2 * amount);
        e.writes[a_key] = Value::Int(reads.IntAt(a_key) + amount);
        e.writes[b_key] = Value::Int(reads.IntAt(b_key) + amount);
        e.output = Value::Bool(true);
        return e;
      });
      return spec;
    }
  }
  POLYV_CHECK(false);
  return spec;
}

}  // namespace polyvalue
