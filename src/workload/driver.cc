#include "src/workload/driver.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "src/common/check.h"
#include "src/replica/consistency.h"

namespace polyvalue {

namespace {

// FNV-1a, folded a word at a time — cheap enough to hash every arrival.
uint64_t HashMix(uint64_t h, uint64_t word) {
  h ^= word;
  return h * 0x100000001b3ULL;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Parses a replicated shape's "<logical>=<int>;..." output (the
// contract documented on MakeReplicatedShapeSpec) and emits one `type`
// event per entry, digesting the Int value the copies hold.
void AnnounceEntries(const std::string& encoded, TraceEventType type,
                     SiteId site, double now, TraceSink* trace) {
  size_t pos = 0;
  while (pos < encoded.size()) {
    size_t semi = encoded.find(';', pos);
    if (semi == std::string::npos) {
      semi = encoded.size();
    }
    const std::string entry = encoded.substr(pos, semi - pos);
    pos = semi + 1;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    TraceEvent event;
    event.time = now;
    event.type = type;
    event.site = site;
    event.key = entry.substr(0, eq);
    event.flag = type == TraceEventType::kReplicaRead;
    event.arg = DigestValue(
        Value::Int(std::strtoll(entry.c_str() + eq + 1, nullptr, 10)));
    trace->Emit(event);
  }
}

}  // namespace

std::string ClusterWorkloadReport::Summary() const {
  std::ostringstream oss;
  oss << "arrivals=" << arrivals << " rejected_down=" << rejected_down
      << " offered=" << offered << " shed=" << shed
      << " committed=" << committed << " aborted=" << aborted
      << " deadline=" << deadline_exceeded
      << " budget=" << budget_exhausted << " retries=" << retries
      << " unsettled=" << unsettled << " goodput=" << goodput
      << " p99=" << p99 << " peak_uncertain=" << peak_uncertain_items
      << " drift=" << conservation_drift
      << " peak_tracked=" << peak_tracked_clients
      << " exactly_once=" << (ExactlyOnce() ? "yes" : "NO");
  return oss.str();
}

ClusterWorkload::ClusterWorkload(ClusterWorkloadParams params)
    : params_(params),
      keyspace_(params.sites, params.keys),
      key_dist_(params.key_dist, params.keys),
      mix_(params.mix) {
  POLYV_CHECK_GT(params_.virtual_clients, 0u);
  // Every admitted request settles by its deadline; the settle window
  // must cover the last admission's deadline or Run() would return with
  // callbacks still pending.
  POLYV_CHECK_GT(params_.settle_time, params_.deadline);
  SimCluster::Options options;
  options.site_count = params_.sites;
  options.engine = params_.engine;
  options.seed = params_.seed;
  options.min_delay = params_.min_delay;
  options.max_delay = params_.max_delay;
  options.trace = params_.trace;
  cluster_ = std::make_unique<SimCluster>(options);
  if (params_.replication_factor > 1) {
    POLYV_CHECK_GT(params_.regions, 0u);
    POLYV_CHECK_EQ(params_.sites % params_.regions, 0u);
    topology_ = std::make_unique<RegionTopology>(RegionTopology::SymmetricGrid(
        params_.regions, params_.sites / params_.regions));
    PlacementPolicy policy;
    policy.replication_factor = params_.replication_factor;
    policy.seed = params_.seed ^ 0x9e3779b97f4a7c15ULL;
    catalog_ = std::make_unique<ReplicaCatalog>(ReplicaCatalog::Uniform(
        ReplicaPlacement(*topology_, policy), "g/", params_.keys));
    catalog_->LoadAll(cluster_.get(), Value::Int(params_.initial_balance),
                      params_.trace);
  } else {
    keyspace_.LoadAll(cluster_.get(), params_.initial_balance);
  }

  SvcOptions svc = params_.svc;
  svc.default_deadline = params_.deadline;
  svc.seed = params_.seed ^ 0x5caff01dULL;
  svc.trace = params_.trace;
  door_ = std::make_unique<SimFrontDoor>(cluster_.get(), svc);
}

ClusterWorkloadReport ClusterWorkload::Run() {
  POLYV_CHECK(!ran_);
  ran_ = true;

  ClusterWorkloadReport report;
  report.schedule_hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  Simulator& sim = cluster_->sim();

  ArrivalProcess arrivals(params_.arrival, params_.seed ^ 0xa221ca1ULL);
  Rng pick_rng(params_.seed ^ 0x70b0109adULL);

  // Clients tracked only while a request is outstanding: id -> number
  // of requests in flight (an open-loop client can overlap itself).
  std::unordered_map<uint64_t, uint32_t> tracked;

  // The arrival pump: one scheduled event per arrival, self-extending,
  // so the event queue never holds more than the next arrival.
  std::function<void(double)> pump = [&](double at) {
    sim.At(at, [&, at] {
      const double next = arrivals.Next();
      if (next <= params_.duration) {
        pump(next);
      }
      ++report.arrivals;
      const uint64_t client = pick_rng.NextBelow(params_.virtual_clients);
      const TxnShapeKind shape = mix_.Pick(&pick_rng);
      // Home coordinator with failover: first live site at or after the
      // client's home. A fully dark cluster rejects the arrival.
      // (Resolved before the spec is built — the replicated shapes aim
      // reads at the coordinator's copy; the probe loop draws nothing,
      // so the unreplicated rng schedule is unchanged.)
      size_t coordinator = static_cast<size_t>(client % params_.sites);
      size_t probes = 0;
      while (probes < params_.sites &&
             cluster_->site(coordinator).crashed()) {
        coordinator = (coordinator + 1) % params_.sites;
        ++probes;
      }
      int64_t delta = 0;
      TxnSpec spec =
          catalog_ != nullptr
              ? MakeReplicatedShapeSpec(shape, *catalog_,
                                        cluster_->site_id(coordinator),
                                        key_dist_, &pick_rng, &delta)
              : MakeShapeSpec(shape, keyspace_, *cluster_, key_dist_,
                              &pick_rng, &delta);
      report.schedule_hash = HashMix(report.schedule_hash, DoubleBits(at));
      report.schedule_hash = HashMix(report.schedule_hash, client);
      report.schedule_hash = HashMix(
          report.schedule_hash, static_cast<uint64_t>(shape) * 31 +
                                    static_cast<uint64_t>(coordinator));
      if (probes == params_.sites) {
        ++report.rejected_down;
        return;
      }
      ++report.offered;
      ++report.shape_offered[static_cast<int>(shape)];
      ++report.unsettled;
      const uint64_t count = ++tracked[client];
      (void)count;
      report.peak_tracked_clients = std::max(
          report.peak_tracked_clients,
          static_cast<uint64_t>(tracked.size()));
      auto spec_holder = std::make_shared<TxnSpec>(std::move(spec));
      door_->CallAsClient(
          client, coordinator, [spec_holder] { return *spec_holder; },
          params_.deadline,
          [this, &report, &tracked, client, shape, delta,
           coordinator](const SvcResult& r) {
            --report.unsettled;
            auto it = tracked.find(client);
            if (it != tracked.end() && --it->second == 0) {
              tracked.erase(it);
            }
            if (r.ok()) {
              ++report.committed;
              ++report.shape_committed[static_cast<int>(shape)];
              report.conservation_drift -= delta;  // expected delta; the
              // final-balance scan below adds the observed total back.
              if (catalog_ != nullptr && params_.trace != nullptr &&
                  r.txn.has_value()) {
                const PolyValue& out = r.txn->output;
                const TraceEventType type =
                    shape == TxnShapeKind::kReadOnly
                        ? TraceEventType::kReplicaRead
                        : TraceEventType::kReplicaWrite;
                const double now = cluster_->sim().now();
                const SiteId coord = cluster_->site_id(coordinator);
                if (out.is_certain()) {
                  if (out.certain_value().is_string()) {
                    AnnounceEntries(out.certain_value().string_value(), type,
                                    coord, now, params_.trace);
                  }
                } else if (type == TraceEventType::kReplicaWrite) {
                  // Committed, but the client saw the output while the
                  // outcome was still in doubt. Over-announce every
                  // branch the copies might settle to: extra write
                  // announcements can only mask an A13 violation, never
                  // invent one, so the audit stays sound. Uncertain
                  // READS are simply not announced (A13 constrains only
                  // certain reads).
                  for (const Value& v : out.PossibleValues()) {
                    if (v.is_string()) {
                      AnnounceEntries(v.string_value(), type, coord, now,
                                      params_.trace);
                    }
                  }
                }
              }
            } else if (r.status.code() == StatusCode::kDeadlineExceeded) {
              ++report.deadline_exceeded;
            } else if (r.status.code() == StatusCode::kResourceExhausted) {
              if (r.attempts == 0) {
                ++report.shed;
              } else {
                ++report.budget_exhausted;
              }
            } else {
              ++report.aborted;
            }
          });
      report.peak_inflight =
          std::max(report.peak_inflight,
                   static_cast<uint64_t>(door_->admission().inflight()));
    });
  };
  const double first = arrivals.Next();
  if (first <= params_.duration) {
    pump(first);
  }

  // Uncertain-item sampler (the in-doubt window series).
  const double horizon = params_.duration + params_.settle_time;
  double sample_sum = 0.0;
  uint64_t sample_count = 0;
  std::function<void()> sample = [&] {
    const double p =
        static_cast<double>(cluster_->TotalUncertainItems());
    report.peak_uncertain_items = std::max(report.peak_uncertain_items, p);
    sample_sum += p;
    ++sample_count;
    if (sim.now() + params_.sample_interval <= horizon) {
      sim.After(params_.sample_interval, sample);
    }
  };
  sim.After(params_.sample_interval, sample);

  // Offered load, then heal everything and drain.
  cluster_->RunFor(params_.duration);
  for (size_t s = 0; s < params_.sites; ++s) {
    if (cluster_->site(s).crashed()) {
      cluster_->RecoverSite(s);
    }
  }
  cluster_->faults().SetDropProbability(0.0);
  cluster_->faults().HealAll();
  cluster_->RunFor(params_.settle_time);

  // Collect.
  report.retries = door_->counters().retries.load();
  report.avg_uncertain_items =
      sample_count == 0 ? 0.0 : sample_sum / static_cast<double>(sample_count);
  report.final_uncertain_items = cluster_->TotalUncertainItems();
  const LogHistogram& latency = door_->latency();
  report.p50 = latency.Percentile(50);
  report.p95 = latency.Percentile(95);
  report.p99 = latency.Percentile(99);
  report.p999 = latency.Percentile(99.9);
  report.goodput =
      static_cast<double>(report.committed) / params_.duration;

  const EngineMetrics metrics = cluster_->TotalMetrics();
  report.polyvalue_installs = metrics.polyvalue_installs;
  report.polyvalues_resolved = metrics.polyvalues_resolved;

  // Conservation: final total == initial total + committed deltas.
  // report.conservation_drift already holds -sum(committed deltas).
  const int64_t initial_total =
      params_.initial_balance * static_cast<int64_t>(params_.keys);
  int64_t final_total = 0;
  bool totals_exact = true;
  if (catalog_ != nullptr) {
    // Replicated: the logical total is the sum over LOGICAL items, each
    // counted once through its first-listed copy (copies are identical
    // when consistent; the A12 digest sweep below catches divergence).
    for (size_t i = 0; i < catalog_->size(); ++i) {
      const ReplicaSet& set = catalog_->at(i);
      const SiteId site = set.sites().front();
      const Result<PolyValue> copy =
          cluster_->site(site.value() - 1).Peek(set.KeyAt(site));
      if (copy.ok() && copy.value().is_certain() &&
          copy.value().certain_value().is_int()) {
        final_total += copy.value().certain_value().int_value();
      } else {
        totals_exact = false;
      }
    }
  } else {
    for (size_t s = 0; s < params_.sites; ++s) {
      cluster_->site(s).store().ForEach(
          [&](const ItemKey&, const PolyValue& value) {
            if (value.is_certain() && value.certain_value().is_int()) {
              final_total += value.certain_value().int_value();
            } else {
              totals_exact = false;
            }
          });
    }
  }
  if (totals_exact) {
    report.conservation_drift += final_total - initial_total;
  } else {
    report.conservation_drift = INT64_MAX;
  }

  // A12 evidence: after the healed drain, sweep every replica set's
  // copy digests into the trace — the auditor flags any set whose
  // copies failed to converge once no outcome was left in doubt.
  if (catalog_ != nullptr && params_.trace != nullptr) {
    for (size_t i = 0; i < catalog_->size(); ++i) {
      EmitReplicaDigests(cluster_.get(), catalog_->at(i), params_.trace);
    }
  }
  return report;
}

}  // namespace polyvalue
