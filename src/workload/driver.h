// ClusterWorkload: millions of virtual clients multiplexed over a
// SimFrontDoor on the deterministic simulator.
//
// A workload cell composes the three generator axes defined in this
// directory — key distribution (distribution.h) x arrival curve
// (arrival.h) x transaction-shape mix (mix.h) — and drives them through
// the PR-5 serving front door: every arrival is admitted (or shed,
// typed), carries a deadline, and retries under the shared budget.
//
// Virtual clients are an ID SPACE, not objects: each arrival draws a
// client id in [0, virtual_clients), which picks the client's home
// coordinator and seeds its per-client jitter stream
// (SimFrontDoor::CallAsClient). The driver tracks a client only while
// it has a request outstanding, so memory is O(in-flight) — bounded by
// the admission controller's concurrency cap — not O(clients);
// `peak_tracked_clients` in the report proves it, and tests/scale_test
// ramps the population 1k -> 1M against that bound.
//
// Accounting contract (the soak tests' conservation invariant): every
// generated arrival ends in EXACTLY ONE of
//     rejected_down | shed | committed | aborted |
//     deadline_exceeded | budget_exhausted
// and the report's ExactlyOnce() cross-checks the sum. Failure
// injection is the caller's business: install crash/recover/drop
// schedules on cluster().sim() between construction and Run(); Run()
// heals everything after the offered-load window and lets the system
// drain, so post-run audits (TraceAuditor quiescent invariants,
// conservation, residual uncertainty) are meaningful.
#ifndef SRC_WORKLOAD_DRIVER_H_
#define SRC_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/replica/catalog.h"
#include "src/replica/placement.h"
#include "src/replica/topology.h"
#include "src/svc/front_door.h"
#include "src/system/cluster.h"
#include "src/workload/arrival.h"
#include "src/workload/distribution.h"
#include "src/workload/mix.h"

namespace polyvalue {

struct ClusterWorkloadParams {
  // Cluster shape.
  size_t sites = 4;
  uint64_t keys = 256;
  int64_t initial_balance = 1000;
  double min_delay = 0.002;  // one-way link latency range (seconds)
  double max_delay = 0.01;
  EngineConfig engine;

  // Replication: with replication_factor > 1 the workload runs over
  // LOGICAL items instead of per-site keys. Sites are grouped into
  // `regions` equal named regions (sites must divide evenly), each of
  // the `keys` logical items gets k copies placed by the seeded
  // consistent-hash policy (spread across regions first), reads consult
  // the copy nearest the submitting coordinator, and writes fan to
  // every copy so the commit protocol keeps them identical. When a
  // trace sink is attached the driver announces replica_write /
  // replica_read digests at settlement and sweeps per-set copy digests
  // after the drain, feeding the A12/A13 audits.
  size_t replication_factor = 1;
  size_t regions = 1;

  // Workload cell.
  uint64_t virtual_clients = 1 << 20;
  KeyDistParams key_dist;
  ArrivalParams arrival;
  MixParams mix;

  // Horizon: offered load for `duration` seconds of virtual time, then
  // heal everything and settle for `settle_time` more.
  double duration = 30.0;
  double settle_time = 20.0;
  double sample_interval = 1.0;  // uncertain-item sampling cadence

  // Serving front door (admission, deadline, retry budget). svc.seed
  // and svc.trace are overridden from `seed` / `trace` below.
  SvcOptions svc;
  double deadline = 1.0;  // per-request deadline (seconds)

  uint64_t seed = 1;
  // Optional protocol trace sink shared by the cluster and the front
  // door (attach one to run the TraceAuditor over the soak).
  TraceSink* trace = nullptr;
};

struct ClusterWorkloadReport {
  // Arrival accounting (see the exactly-once contract above).
  uint64_t arrivals = 0;
  uint64_t rejected_down = 0;  // no live coordinator at arrival time
  uint64_t offered = 0;        // arrivals that reached the front door
  uint64_t shed = 0;           // admission refusals (attempts == 0)
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t budget_exhausted = 0;  // retry budget denials (attempts >= 1)
  uint64_t retries = 0;
  uint64_t unsettled = 0;  // callbacks that never fired; must be 0

  // Per-shape split of offered / committed.
  uint64_t shape_offered[kTxnShapeCount] = {};
  uint64_t shape_committed[kTxnShapeCount] = {};

  // Latency of everything admitted (seconds), from the front door.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double goodput = 0.0;  // commits per offered-load second

  // In-doubt window statistics, sampled every sample_interval.
  double peak_uncertain_items = 0.0;
  double avg_uncertain_items = 0.0;
  uint64_t polyvalue_installs = 0;
  uint64_t polyvalues_resolved = 0;
  uint64_t final_uncertain_items = 0;

  // Conservation audit: final total balance minus (initial total +
  // committed increment deltas). INT64_MAX when any item stayed
  // unresolved. Nonzero = atomicity violation.
  int64_t conservation_drift = 0;

  // O(in-flight) evidence: the most clients simultaneously tracked and
  // the front door's peak concurrency.
  uint64_t peak_tracked_clients = 0;
  uint64_t peak_inflight = 0;

  // FNV-1a over the generated schedule (arrival time bits, client id,
  // shape, coordinator): two runs of the same params must match.
  uint64_t schedule_hash = 0;

  bool ExactlyOnce() const {
    return unsettled == 0 && arrivals == rejected_down + offered &&
           offered == shed + committed + aborted + deadline_exceeded +
                          budget_exhausted;
  }

  std::string Summary() const;
};

class ClusterWorkload {
 public:
  explicit ClusterWorkload(ClusterWorkloadParams params);

  // Expose the assembly so callers can install chaos schedules and
  // trace sinks before Run() and audit state afterwards.
  SimCluster& cluster() { return *cluster_; }
  SimFrontDoor& door() { return *door_; }
  const Keyspace& keyspace() const { return keyspace_; }

  // Replicated-mode assembly (null when replication_factor == 1).
  bool replicated() const { return catalog_ != nullptr; }
  const ReplicaCatalog* catalog() const { return catalog_.get(); }
  const RegionTopology* topology() const { return topology_.get(); }

  // Drives the offered-load window, heals every injected fault, settles,
  // and reports. Call once.
  ClusterWorkloadReport Run();

 private:
  ClusterWorkloadParams params_;
  Keyspace keyspace_;
  KeyDistribution key_dist_;
  TxnMix mix_;
  std::unique_ptr<RegionTopology> topology_;
  std::unique_ptr<ReplicaCatalog> catalog_;
  std::unique_ptr<SimCluster> cluster_;
  std::unique_ptr<SimFrontDoor> door_;
  bool ran_ = false;
};

}  // namespace polyvalue

#endif  // SRC_WORKLOAD_DRIVER_H_
