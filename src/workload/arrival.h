// Open-loop arrival processes for workload generators.
//
// Open loop means arrivals do not wait for completions — the curve is a
// property of the CLIENT POPULATION, not of the system under test, so
// overload actually builds up instead of being absorbed by closed-loop
// self-throttling. Four curves:
//
//   kConstant — evenly spaced arrivals at `rate` (a pathological
//               metronome: zero jitter, worst case for token buckets);
//   kPoisson  — exponential inter-arrivals at `rate` (memoryless; the
//               baseline assumption of the §4.1 model);
//   kDiurnal  — Poisson with a sinusoidal rate envelope of the given
//               period and amplitude (day/night load shape compressed
//               onto simulation timescales), sampled by thinning;
//   kHerd     — a background Poisson stream plus synchronized bursts
//               every herd_interval seconds (retry storms, cache
//               expiry stampedes, everyone's cron firing at :00).
//
// Next() returns absolute arrival times, non-decreasing, consuming only
// the internal seeded Rng — the schedule is a pure function of
// (params, seed) and is byte-identical across runs and platforms.
#ifndef SRC_WORKLOAD_ARRIVAL_H_
#define SRC_WORKLOAD_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace polyvalue {

enum class ArrivalCurveKind {
  kConstant,
  kPoisson,
  kDiurnal,
  kHerd,
};

const char* ArrivalCurveKindName(ArrivalCurveKind kind);

struct ArrivalParams {
  ArrivalCurveKind kind = ArrivalCurveKind::kPoisson;
  // Long-run mean arrival rate, arrivals/second (every curve honours
  // this in expectation).
  double rate = 100.0;
  // kDiurnal: rate(t) = rate * (1 + amplitude * sin(2*pi*t / period)).
  double diurnal_period = 60.0;
  double diurnal_amplitude = 0.8;  // in [0, 1)
  // kHerd: fraction of `rate` delivered as background Poisson traffic;
  // the rest arrives in bursts every herd_interval seconds, each burst
  // spread uniformly over herd_spread seconds.
  double herd_background_fraction = 0.5;
  double herd_interval = 10.0;
  double herd_spread = 0.05;
};

class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalParams params, uint64_t seed);

  // Absolute time of the next arrival (seconds; non-decreasing).
  double Next();

 private:
  void FillBurst();  // kHerd: generates the offsets of burst number burst_index_

  ArrivalParams params_;
  Rng rng_;
  double last_ = 0.0;
  // kHerd state: the next background arrival, plus the current burst's
  // sorted arrival times and a cursor into them.
  double next_background_ = 0.0;
  uint64_t burst_index_ = 0;
  size_t burst_cursor_ = 0;
  std::vector<double> burst_;
};

}  // namespace polyvalue

#endif  // SRC_WORKLOAD_ARRIVAL_H_
