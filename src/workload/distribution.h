// Key-selection distributions for workload generators.
//
// §4.2 notes that "the selection of items to participate in
// transactions is not likely to be uniform"; every workload in this
// tree that needs a non-uniform key stream draws it from here, so the
// skew model is implemented exactly once:
//
//   kUniform — every index equally likely;
//   kZipfian — rank-frequency ~ 1/rank^theta (the YCSB closed-form
//              generator: O(universe) setup, O(1) per draw), rank 0
//              hottest;
//   kHotSet  — the first hot_fraction of the universe receives
//              hot_probability of the accesses, uniform inside each
//              population (the 80/20 model behind bench_hotspot's
//              I_eff analysis).
//
// Draws consume exactly one caller-supplied Rng, so a generator is as
// deterministic as its seed and two distributions can share or split
// streams as the workload requires.
#ifndef SRC_WORKLOAD_DISTRIBUTION_H_
#define SRC_WORKLOAD_DISTRIBUTION_H_

#include <cstdint>

#include "src/common/rng.h"

namespace polyvalue {

enum class KeyDistKind {
  kUniform,
  kZipfian,
  kHotSet,
};

const char* KeyDistKindName(KeyDistKind kind);

struct KeyDistParams {
  KeyDistKind kind = KeyDistKind::kUniform;
  // Zipfian exponent, in (0, 1). 0.99 is the YCSB default.
  double zipf_theta = 0.99;
  // Hot-set model: the first ceil(hot_fraction * universe) indices
  // receive hot_probability of all draws.
  double hot_fraction = 0.1;
  double hot_probability = 0.9;
};

// A frozen distribution over [0, universe). Construction does any
// per-universe precomputation (the zipfian zeta sum); Pick() is O(1).
class KeyDistribution {
 public:
  KeyDistribution(KeyDistParams params, uint64_t universe);

  uint64_t universe() const { return universe_; }
  KeyDistKind kind() const { return params_.kind; }

  // Draws an index in [0, universe).
  uint64_t Pick(Rng* rng) const;

  // Exact (kUniform, kHotSet) or asymptotic (kZipfian) probability of
  // index i — used by the property tests and by I_eff computations.
  double Probability(uint64_t index) const;

 private:
  KeyDistParams params_;
  uint64_t universe_;
  uint64_t hot_count_ = 0;  // kHotSet
  // Zipfian closed-form state (Gray et al. via YCSB).
  double zeta_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

// Draws a non-negative integer with mean exactly `mean`: an exponential
// draw, probabilistically rounded. The §4.2 dependency-degree idiom
// (poly_sim, engine validation), shared so every consumer rounds the
// same way. mean <= 0 returns 0.
uint64_t DrawExponentialCount(Rng* rng, double mean);

}  // namespace polyvalue

#endif  // SRC_WORKLOAD_DISTRIBUTION_H_
