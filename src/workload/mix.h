// Transaction-shape mixes and the keyspace they run against.
//
// A workload cell is (key distribution) x (arrival curve) x (shape
// mix). The shapes here are the four traffic archetypes the serving
// benches care about:
//
//   kReadOnly      — read two items, output their sum (no write round);
//   kTransfer      — the classic two-account funds transfer (conserves
//                    total balance; aborts on insufficient funds);
//   kIncrement     — read-modify-write +amount on one item (the hot
//                    counter shape; shifts total balance by +amount);
//   kMultiTransfer — one debit fanned out to two credit items, usually
//                    spanning three sites (conserves total balance;
//                    widest prepare fan-out, the shape most exposed to
//                    coordinator failure).
//
// Conservation audit contract: every spec reports the delta it applies
// to the keyspace's total balance IF it commits. Transfers report 0,
// increments report +amount — so after a run, final_total must equal
// initial_total + sum(delta over committed transactions), no matter
// which mixture ran or which failures were injected. Any drift is an
// atomicity violation.
#ifndef SRC_WORKLOAD_MIX_H_
#define SRC_WORKLOAD_MIX_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/replica/catalog.h"
#include "src/system/cluster.h"
#include "src/workload/distribution.h"

namespace polyvalue {

enum class TxnShapeKind {
  kReadOnly,
  kTransfer,
  kIncrement,
  kMultiTransfer,
};

inline constexpr int kTxnShapeCount = 4;

const char* TxnShapeKindName(TxnShapeKind kind);

// Relative weights; they need not sum to 1 (Pick normalises).
struct MixParams {
  double read_only = 0.0;
  double transfer = 1.0;
  double increment = 0.0;
  double multi_transfer = 0.0;
};

// Canonical mixes used by the soak grid and the serving benches.
MixParams ReadHeavyMix();       // 80 / 10 / 5 / 5
MixParams WriteHeavyMix();      // 10 / 60 / 10 / 20
MixParams IncrementHeavyMix();  // 5 / 10 / 80 / 5
MixParams MultiSiteMix();       // 15 / 25 / 10 / 50

class TxnMix {
 public:
  explicit TxnMix(MixParams params);

  TxnShapeKind Pick(Rng* rng) const;
  double weight(TxnShapeKind kind) const;

 private:
  double cumulative_[kTxnShapeCount];
  double total_;
};

// Maps the workload's flat key indices onto per-site items: key k lives
// on site k % sites under the name "w/<site>/<k>".
class Keyspace {
 public:
  Keyspace(size_t sites, uint64_t keys);

  size_t sites() const { return sites_; }
  uint64_t keys() const { return keys_; }
  size_t site_index(uint64_t key) const { return key % sites_; }
  ItemKey name(uint64_t key) const;

  // Seeds every key with `initial_balance` at its owning site.
  void LoadAll(SimCluster* cluster, int64_t initial_balance) const;

 private:
  size_t sites_;
  uint64_t keys_;
};

// Builds one transaction of the given shape. Keys are drawn from
// `dist` (distinct where the shape requires it); `*delta` receives the
// shape's committed-balance delta for the conservation audit.
TxnSpec MakeShapeSpec(TxnShapeKind shape, const Keyspace& keyspace,
                      const SimCluster& cluster,
                      const KeyDistribution& dist, Rng* rng,
                      int64_t* delta);

// Replicated variants: the same four archetypes over LOGICAL items from
// a ReplicaCatalog (dist's universe must equal the catalog size). Reads
// consult each item's copy nearest the submitting coordinator (the
// coordinator's own copy when it holds one, the primary otherwise);
// writes fan to every copy of every touched item, so the commit
// protocol keeps the copies identical — §3's replicated-item model.
//
// The transaction output is a Str encoding "<logical>=<int>" entries
// joined by ';' — the values READ (kReadOnly) or WRITTEN (the write
// shapes). The workload driver parses it at settlement to announce
// replica_read / replica_write digests for the A12/A13 audit without
// touching engine internals.
TxnSpec MakeReplicatedShapeSpec(TxnShapeKind shape,
                                const ReplicaCatalog& catalog,
                                SiteId coordinator,
                                const KeyDistribution& dist, Rng* rng,
                                int64_t* delta);

// The copy of `replicas` a reader at `coordinator` should consult.
SiteId PreferredCopy(const ReplicaSet& replicas, SiteId coordinator);

}  // namespace polyvalue

#endif  // SRC_WORKLOAD_MIX_H_
