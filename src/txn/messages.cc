#include "src/txn/messages.h"

#include "src/net/codec.h"
#include "src/net/wire.h"

namespace polyvalue {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPrepare:
      return "PREPARE";
    case MsgType::kPrepareReply:
      return "PREPARE_REPLY";
    case MsgType::kWriteReq:
      return "WRITE_REQ";
    case MsgType::kReady:
      return "READY";
    case MsgType::kComplete:
      return "COMPLETE";
    case MsgType::kAbort:
      return "ABORT";
    case MsgType::kOutcomeRequest:
      return "OUTCOME_REQUEST";
    case MsgType::kOutcomeReply:
      return "OUTCOME_REPLY";
    case MsgType::kOutcomeNotify:
      return "OUTCOME_NOTIFY";
    case MsgType::kPaxosPhase1a:
      return "PAXOS_PHASE1A";
    case MsgType::kPaxosPhase1b:
      return "PAXOS_PHASE1B";
    case MsgType::kPaxosPhase2a:
      return "PAXOS_PHASE2A";
    case MsgType::kPaxosPhase2b:
      return "PAXOS_PHASE2B";
    case MsgType::kPaxosDecision:
      return "PAXOS_DECISION";
    case MsgType::kPaxosNudge:
      return "PAXOS_NUDGE";
  }
  return "?";
}

namespace {

void EncodeKeyList(const std::vector<ItemKey>& keys, ByteWriter* w) {
  w->PutVarint(keys.size());
  for (const ItemKey& key : keys) {
    w->PutString(key);
  }
}

Result<std::vector<ItemKey>> DecodeKeyList(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > (1u << 20)) {
    return DataLossError("key list too large");
  }
  std::vector<ItemKey> keys;
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    POLYV_ASSIGN_OR_RETURN(std::string key, r->GetString());
    keys.push_back(std::move(key));
  }
  return keys;
}

void EncodeValueMap(const std::map<ItemKey, PolyValue>& m, ByteWriter* w) {
  w->PutVarint(m.size());
  for (const auto& [key, value] : m) {
    w->PutString(key);
    EncodePolyValue(value, w);
  }
}

Result<std::map<ItemKey, PolyValue>> DecodeValueMap(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > (1u << 20)) {
    return DataLossError("value map too large");
  }
  std::map<ItemKey, PolyValue> m;
  for (uint64_t i = 0; i < n; ++i) {
    POLYV_ASSIGN_OR_RETURN(std::string key, r->GetString());
    POLYV_ASSIGN_OR_RETURN(PolyValue value, DecodePolyValue(r));
    m.emplace(std::move(key), std::move(value));
  }
  return m;
}

void EncodeSiteList(const std::vector<SiteId>& sites, ByteWriter* w) {
  w->PutVarint(sites.size());
  for (SiteId site : sites) {
    w->PutVarint(site.value());
  }
}

Result<std::vector<SiteId>> DecodeSiteList(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > (1u << 20)) {
    return DataLossError("site list too large");
  }
  std::vector<SiteId> sites;
  sites.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    POLYV_ASSIGN_OR_RETURN(uint64_t site, r->GetVarint());
    sites.push_back(SiteId(site));
  }
  return sites;
}

void EncodeInstanceList(const std::vector<Message::PaxosInstance>& instances,
                        ByteWriter* w) {
  w->PutVarint(instances.size());
  for (const Message::PaxosInstance& inst : instances) {
    w->PutVarint(inst.rm.value());
    w->PutVarint(inst.ballot);
    w->PutBool(inst.prepared);
  }
}

Result<std::vector<Message::PaxosInstance>> DecodeInstanceList(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > (1u << 20)) {
    return DataLossError("instance list too large");
  }
  std::vector<Message::PaxosInstance> instances;
  instances.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Message::PaxosInstance inst;
    POLYV_ASSIGN_OR_RETURN(uint64_t rm, r->GetVarint());
    inst.rm = SiteId(rm);
    POLYV_ASSIGN_OR_RETURN(inst.ballot, r->GetVarint());
    POLYV_ASSIGN_OR_RETURN(inst.prepared, r->GetBool());
    instances.push_back(inst);
  }
  return instances;
}

}  // namespace

std::string Message::Encode() const {
  ByteWriter w;
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutVarint(txn.value());
  switch (type) {
    case MsgType::kPrepare:
      w.PutVarint(coordinator.value());
      EncodeKeyList(read_keys, &w);
      EncodeKeyList(write_keys, &w);
      // Participant group: empty for the 2PC leg, the RM set for the
      // Paxos leg (RMs embed it in their Phase2a votes).
      EncodeSiteList(group, &w);
      break;
    case MsgType::kPrepareReply:
      w.PutBool(ok);
      w.PutString(error);
      EncodeValueMap(values, &w);
      break;
    case MsgType::kWriteReq:
      EncodeValueMap(writes, &w);
      break;
    case MsgType::kReady:
    case MsgType::kComplete:
    case MsgType::kAbort:
    case MsgType::kOutcomeRequest:
      break;
    case MsgType::kOutcomeReply:
      w.PutBool(known);
      w.PutBool(committed);
      break;
    case MsgType::kOutcomeNotify:
      w.PutBool(committed);
      break;
    case MsgType::kPaxosPhase1a:
      w.PutVarint(ballot);
      break;
    case MsgType::kPaxosPhase1b:
      w.PutVarint(ballot);
      EncodeInstanceList(instances, &w);
      EncodeSiteList(group, &w);
      break;
    case MsgType::kPaxosPhase2a:
      w.PutVarint(ballot);
      w.PutVarint(rm.value());
      w.PutBool(ok);
      EncodeSiteList(group, &w);
      break;
    case MsgType::kPaxosPhase2b:
      w.PutVarint(ballot);
      w.PutVarint(rm.value());
      w.PutBool(ok);
      break;
    case MsgType::kPaxosDecision:
      w.PutBool(committed);
      break;
    case MsgType::kPaxosNudge:
      EncodeSiteList(group, &w);
      break;
  }
  return w.Take();
}

Result<Message> Message::Decode(const std::string& bytes) {
  ByteReader r(bytes);
  POLYV_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kProtocolVersion) {
    return DataLossError("unsupported protocol version " +
                         std::to_string(version));
  }
  POLYV_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  Message m;
  m.type = static_cast<MsgType>(tag);
  POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
  m.txn = TxnId(txn);
  switch (m.type) {
    case MsgType::kPrepare: {
      POLYV_ASSIGN_OR_RETURN(uint64_t coord, r.GetVarint());
      m.coordinator = SiteId(coord);
      POLYV_ASSIGN_OR_RETURN(m.read_keys, DecodeKeyList(&r));
      POLYV_ASSIGN_OR_RETURN(m.write_keys, DecodeKeyList(&r));
      POLYV_ASSIGN_OR_RETURN(m.group, DecodeSiteList(&r));
      break;
    }
    case MsgType::kPrepareReply: {
      POLYV_ASSIGN_OR_RETURN(m.ok, r.GetBool());
      POLYV_ASSIGN_OR_RETURN(m.error, r.GetString());
      POLYV_ASSIGN_OR_RETURN(m.values, DecodeValueMap(&r));
      break;
    }
    case MsgType::kWriteReq: {
      POLYV_ASSIGN_OR_RETURN(m.writes, DecodeValueMap(&r));
      break;
    }
    case MsgType::kReady:
    case MsgType::kComplete:
    case MsgType::kAbort:
    case MsgType::kOutcomeRequest:
      break;
    case MsgType::kOutcomeReply: {
      POLYV_ASSIGN_OR_RETURN(m.known, r.GetBool());
      POLYV_ASSIGN_OR_RETURN(m.committed, r.GetBool());
      break;
    }
    case MsgType::kOutcomeNotify: {
      POLYV_ASSIGN_OR_RETURN(m.committed, r.GetBool());
      break;
    }
    case MsgType::kPaxosPhase1a: {
      POLYV_ASSIGN_OR_RETURN(m.ballot, r.GetVarint());
      break;
    }
    case MsgType::kPaxosPhase1b: {
      POLYV_ASSIGN_OR_RETURN(m.ballot, r.GetVarint());
      POLYV_ASSIGN_OR_RETURN(m.instances, DecodeInstanceList(&r));
      POLYV_ASSIGN_OR_RETURN(m.group, DecodeSiteList(&r));
      break;
    }
    case MsgType::kPaxosPhase2a: {
      POLYV_ASSIGN_OR_RETURN(m.ballot, r.GetVarint());
      POLYV_ASSIGN_OR_RETURN(uint64_t rm, r.GetVarint());
      m.rm = SiteId(rm);
      POLYV_ASSIGN_OR_RETURN(m.ok, r.GetBool());
      POLYV_ASSIGN_OR_RETURN(m.group, DecodeSiteList(&r));
      break;
    }
    case MsgType::kPaxosPhase2b: {
      POLYV_ASSIGN_OR_RETURN(m.ballot, r.GetVarint());
      POLYV_ASSIGN_OR_RETURN(uint64_t rm, r.GetVarint());
      m.rm = SiteId(rm);
      POLYV_ASSIGN_OR_RETURN(m.ok, r.GetBool());
      break;
    }
    case MsgType::kPaxosDecision: {
      POLYV_ASSIGN_OR_RETURN(m.committed, r.GetBool());
      break;
    }
    case MsgType::kPaxosNudge: {
      POLYV_ASSIGN_OR_RETURN(m.group, DecodeSiteList(&r));
      break;
    }
    default:
      return DataLossError("unknown message type");
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in message");
  }
  return m;
}

Message MakePrepare(TxnId txn, SiteId coordinator,
                    std::vector<ItemKey> read_keys,
                    std::vector<ItemKey> write_keys) {
  Message m;
  m.type = MsgType::kPrepare;
  m.txn = txn;
  m.coordinator = coordinator;
  m.read_keys = std::move(read_keys);
  m.write_keys = std::move(write_keys);
  return m;
}

Message MakePrepareReply(TxnId txn, std::map<ItemKey, PolyValue> values) {
  Message m;
  m.type = MsgType::kPrepareReply;
  m.txn = txn;
  m.ok = true;
  m.values = std::move(values);
  return m;
}

Message MakePrepareRefusal(TxnId txn, std::string error) {
  Message m;
  m.type = MsgType::kPrepareReply;
  m.txn = txn;
  m.ok = false;
  m.error = std::move(error);
  return m;
}

Message MakeWriteReq(TxnId txn, std::map<ItemKey, PolyValue> writes) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.txn = txn;
  m.writes = std::move(writes);
  return m;
}

Message MakeReady(TxnId txn) {
  Message m;
  m.type = MsgType::kReady;
  m.txn = txn;
  return m;
}

Message MakeComplete(TxnId txn) {
  Message m;
  m.type = MsgType::kComplete;
  m.txn = txn;
  return m;
}

Message MakeAbort(TxnId txn) {
  Message m;
  m.type = MsgType::kAbort;
  m.txn = txn;
  return m;
}

Message MakeOutcomeRequest(TxnId txn) {
  Message m;
  m.type = MsgType::kOutcomeRequest;
  m.txn = txn;
  return m;
}

Message MakeOutcomeReply(TxnId txn, bool known, bool committed) {
  Message m;
  m.type = MsgType::kOutcomeReply;
  m.txn = txn;
  m.known = known;
  m.committed = committed;
  return m;
}

Message MakeOutcomeNotify(TxnId txn, bool committed) {
  Message m;
  m.type = MsgType::kOutcomeNotify;
  m.txn = txn;
  m.committed = committed;
  return m;
}

Message MakePaxosPhase1a(TxnId txn, uint64_t ballot) {
  Message m;
  m.type = MsgType::kPaxosPhase1a;
  m.txn = txn;
  m.ballot = ballot;
  return m;
}

Message MakePaxosPhase1b(TxnId txn, uint64_t ballot,
                         std::vector<Message::PaxosInstance> instances,
                         std::vector<SiteId> group) {
  Message m;
  m.type = MsgType::kPaxosPhase1b;
  m.txn = txn;
  m.ballot = ballot;
  m.instances = std::move(instances);
  m.group = std::move(group);
  return m;
}

Message MakePaxosPhase2a(TxnId txn, uint64_t ballot, SiteId rm, bool prepared,
                         std::vector<SiteId> group) {
  Message m;
  m.type = MsgType::kPaxosPhase2a;
  m.txn = txn;
  m.ballot = ballot;
  m.rm = rm;
  m.ok = prepared;
  m.group = std::move(group);
  return m;
}

Message MakePaxosPhase2b(TxnId txn, uint64_t ballot, SiteId rm,
                         bool prepared) {
  Message m;
  m.type = MsgType::kPaxosPhase2b;
  m.txn = txn;
  m.ballot = ballot;
  m.rm = rm;
  m.ok = prepared;
  return m;
}

Message MakePaxosDecision(TxnId txn, bool committed) {
  Message m;
  m.type = MsgType::kPaxosDecision;
  m.txn = txn;
  m.committed = committed;
  return m;
}

Message MakePaxosNudge(TxnId txn, std::vector<SiteId> group) {
  Message m;
  m.type = MsgType::kPaxosNudge;
  m.txn = txn;
  m.group = std::move(group);
  return m;
}

}  // namespace polyvalue
