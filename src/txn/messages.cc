#include "src/txn/messages.h"

#include "src/net/codec.h"
#include "src/net/wire.h"

namespace polyvalue {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPrepare:
      return "PREPARE";
    case MsgType::kPrepareReply:
      return "PREPARE_REPLY";
    case MsgType::kWriteReq:
      return "WRITE_REQ";
    case MsgType::kReady:
      return "READY";
    case MsgType::kComplete:
      return "COMPLETE";
    case MsgType::kAbort:
      return "ABORT";
    case MsgType::kOutcomeRequest:
      return "OUTCOME_REQUEST";
    case MsgType::kOutcomeReply:
      return "OUTCOME_REPLY";
    case MsgType::kOutcomeNotify:
      return "OUTCOME_NOTIFY";
  }
  return "?";
}

namespace {

void EncodeKeyList(const std::vector<ItemKey>& keys, ByteWriter* w) {
  w->PutVarint(keys.size());
  for (const ItemKey& key : keys) {
    w->PutString(key);
  }
}

Result<std::vector<ItemKey>> DecodeKeyList(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > (1u << 20)) {
    return DataLossError("key list too large");
  }
  std::vector<ItemKey> keys;
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    POLYV_ASSIGN_OR_RETURN(std::string key, r->GetString());
    keys.push_back(std::move(key));
  }
  return keys;
}

void EncodeValueMap(const std::map<ItemKey, PolyValue>& m, ByteWriter* w) {
  w->PutVarint(m.size());
  for (const auto& [key, value] : m) {
    w->PutString(key);
    EncodePolyValue(value, w);
  }
}

Result<std::map<ItemKey, PolyValue>> DecodeValueMap(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > (1u << 20)) {
    return DataLossError("value map too large");
  }
  std::map<ItemKey, PolyValue> m;
  for (uint64_t i = 0; i < n; ++i) {
    POLYV_ASSIGN_OR_RETURN(std::string key, r->GetString());
    POLYV_ASSIGN_OR_RETURN(PolyValue value, DecodePolyValue(r));
    m.emplace(std::move(key), std::move(value));
  }
  return m;
}

}  // namespace

std::string Message::Encode() const {
  ByteWriter w;
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutVarint(txn.value());
  switch (type) {
    case MsgType::kPrepare:
      w.PutVarint(coordinator.value());
      EncodeKeyList(read_keys, &w);
      EncodeKeyList(write_keys, &w);
      break;
    case MsgType::kPrepareReply:
      w.PutBool(ok);
      w.PutString(error);
      EncodeValueMap(values, &w);
      break;
    case MsgType::kWriteReq:
      EncodeValueMap(writes, &w);
      break;
    case MsgType::kReady:
    case MsgType::kComplete:
    case MsgType::kAbort:
    case MsgType::kOutcomeRequest:
      break;
    case MsgType::kOutcomeReply:
      w.PutBool(known);
      w.PutBool(committed);
      break;
    case MsgType::kOutcomeNotify:
      w.PutBool(committed);
      break;
  }
  return w.Take();
}

Result<Message> Message::Decode(const std::string& bytes) {
  ByteReader r(bytes);
  POLYV_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kProtocolVersion) {
    return DataLossError("unsupported protocol version " +
                         std::to_string(version));
  }
  POLYV_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  Message m;
  m.type = static_cast<MsgType>(tag);
  POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
  m.txn = TxnId(txn);
  switch (m.type) {
    case MsgType::kPrepare: {
      POLYV_ASSIGN_OR_RETURN(uint64_t coord, r.GetVarint());
      m.coordinator = SiteId(coord);
      POLYV_ASSIGN_OR_RETURN(m.read_keys, DecodeKeyList(&r));
      POLYV_ASSIGN_OR_RETURN(m.write_keys, DecodeKeyList(&r));
      break;
    }
    case MsgType::kPrepareReply: {
      POLYV_ASSIGN_OR_RETURN(m.ok, r.GetBool());
      POLYV_ASSIGN_OR_RETURN(m.error, r.GetString());
      POLYV_ASSIGN_OR_RETURN(m.values, DecodeValueMap(&r));
      break;
    }
    case MsgType::kWriteReq: {
      POLYV_ASSIGN_OR_RETURN(m.writes, DecodeValueMap(&r));
      break;
    }
    case MsgType::kReady:
    case MsgType::kComplete:
    case MsgType::kAbort:
    case MsgType::kOutcomeRequest:
      break;
    case MsgType::kOutcomeReply: {
      POLYV_ASSIGN_OR_RETURN(m.known, r.GetBool());
      POLYV_ASSIGN_OR_RETURN(m.committed, r.GetBool());
      break;
    }
    case MsgType::kOutcomeNotify: {
      POLYV_ASSIGN_OR_RETURN(m.committed, r.GetBool());
      break;
    }
    default:
      return DataLossError("unknown message type");
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in message");
  }
  return m;
}

Message MakePrepare(TxnId txn, SiteId coordinator,
                    std::vector<ItemKey> read_keys,
                    std::vector<ItemKey> write_keys) {
  Message m;
  m.type = MsgType::kPrepare;
  m.txn = txn;
  m.coordinator = coordinator;
  m.read_keys = std::move(read_keys);
  m.write_keys = std::move(write_keys);
  return m;
}

Message MakePrepareReply(TxnId txn, std::map<ItemKey, PolyValue> values) {
  Message m;
  m.type = MsgType::kPrepareReply;
  m.txn = txn;
  m.ok = true;
  m.values = std::move(values);
  return m;
}

Message MakePrepareRefusal(TxnId txn, std::string error) {
  Message m;
  m.type = MsgType::kPrepareReply;
  m.txn = txn;
  m.ok = false;
  m.error = std::move(error);
  return m;
}

Message MakeWriteReq(TxnId txn, std::map<ItemKey, PolyValue> writes) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.txn = txn;
  m.writes = std::move(writes);
  return m;
}

Message MakeReady(TxnId txn) {
  Message m;
  m.type = MsgType::kReady;
  m.txn = txn;
  return m;
}

Message MakeComplete(TxnId txn) {
  Message m;
  m.type = MsgType::kComplete;
  m.txn = txn;
  return m;
}

Message MakeAbort(TxnId txn) {
  Message m;
  m.type = MsgType::kAbort;
  m.txn = txn;
  return m;
}

Message MakeOutcomeRequest(TxnId txn) {
  Message m;
  m.type = MsgType::kOutcomeRequest;
  m.txn = txn;
  return m;
}

Message MakeOutcomeReply(TxnId txn, bool known, bool committed) {
  Message m;
  m.type = MsgType::kOutcomeReply;
  m.txn = txn;
  m.known = known;
  m.committed = committed;
  return m;
}

Message MakeOutcomeNotify(TxnId txn, bool committed) {
  Message m;
  m.type = MsgType::kOutcomeNotify;
  m.txn = txn;
  m.committed = committed;
  return m;
}

}  // namespace polyvalue
