// Coordinator role: Submit → PREPARE fan-out → execute (poly)transaction
// → WRITE_REQ fan-out → READY collection → decide → COMPLETE/ABORT.
#include "src/txn/engine.h"

#include <set>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/strings.h"

namespace polyvalue {

TxnId TxnEngine::Submit(TxnSpec spec, TxnCallback callback) {
  return Submit(std::move(spec), std::move(callback), AllocateTxnId());
}

TxnId TxnEngine::Submit(TxnSpec spec, TxnCallback callback, TxnId txn) {
  POLYV_CHECK_MSG(CoordinatorOf(txn) == self_,
                  "txn id " << txn << " was not allocated by " << self_);
  Outbox out;
  SubmitUnderLock(std::move(spec), std::move(callback), txn, &out);
  FlushOutbox(&out);
  return txn;
}

void TxnEngine::SubmitUnderLock(TxnSpec spec, TxnCallback callback, TxnId txn,
                                Outbox* out) {
  MutexLock lock(&mu_);
  ++metrics_.txns_submitted;
  if (crashed_) {
    out->thunks.push_back([callback = std::move(callback), txn] {
      TxnResult r;
      r.id = txn;
      r.disposition = TxnDisposition::kAborted;
      r.abort_reason = "coordinator site is down";
      callback(r);
    });
    return;
  }
  Trace(TraceEventType::kSubmit, txn);
  Coordination coord;
  coord.participants = spec.Participants();
  coord.callback = std::move(callback);

  if (config_.enable_local_fast_path && coord.participants.size() == 1 &&
      coord.participants.front() == self_) {
    if (TryLocalFastPath(txn, spec, coord.callback, out)) {
      return;
    }
  }

  if (coord.participants.empty()) {
    // Pure computation: execute immediately against an empty read set.
    TxnEffect effect = spec.logic(TxnReads{});
    TxnResult r;
    r.id = txn;
    if (effect.abort) {
      ++metrics_.txns_aborted;
      Trace(TraceEventType::kDecisionAbort, txn);
      r.disposition = TxnDisposition::kAborted;
      r.abort_reason = effect.abort_reason;
    } else {
      POLYV_CHECK_MSG(effect.writes.empty(),
                      "transaction writes items but declared no sites");
      ++metrics_.txns_read_only;
      Trace(TraceEventType::kReadOnlyDone, txn);
      r.disposition = TxnDisposition::kReadOnly;
      r.output = PolyValue::Certain(effect.output.value_or(Value::Null()));
    }
    out->thunks.push_back([cb = std::move(coord.callback), r] { cb(r); });
    return;
  }

  // Ask every participant to lock and read its share. Values of
  // write-set items are collected too: §3.2 needs each written item's
  // previous value as the fallback for non-writing alternatives, and
  // the participant needs it to build the ¬T half on a wait timeout.
  for (SiteId site : coord.participants) {
    std::vector<ItemKey> reads;
    std::vector<ItemKey> writes;
    for (const auto& [key, owner] : spec.read_set) {
      if (owner == site) {
        reads.push_back(key);
      }
    }
    for (const auto& [key, owner] : spec.write_set) {
      if (owner == site) {
        writes.push_back(key);
      }
    }
    coord.awaiting.insert(site);
    out->sends.emplace_back(
        site, MakePrepare(txn, self_, std::move(reads), std::move(writes)));
  }
  coord.spec = std::move(spec);
  coord.timer = ScheduleGuarded(
      config_.prepare_timeout,
      [this, txn] { CoordinatorTimeout(txn, CoordPhase::kCollecting); });
  coordinations_.emplace(txn, std::move(coord));
}

// §2.1 in spirit: a transaction confined to one site needs no atomic
// *distributed* update — no compute/wait phases, no in-doubt window.
// Lock, read, execute (still a polytransaction if local items hold
// polyvalues), install, decide, reply. Called under mu_.
bool TxnEngine::TryLocalFastPath(TxnId txn, const TxnSpec& spec,
                                 const TxnCallback& callback, Outbox* out) {
  // Gather all local keys.
  std::set<ItemKey> all_keys;
  for (const auto& [key, site] : spec.read_set) {
    all_keys.insert(key);
  }
  for (const auto& [key, site] : spec.write_set) {
    all_keys.insert(key);
  }
  auto finish = [&](TxnResult result) {
    ReleaseLocks(txn, out);
    out->thunks.push_back([callback, result = std::move(result)] {
      callback(result);
    });
  };

  // Lock everything (immediate abort on conflict, as in the full path).
  for (const ItemKey& key : all_keys) {
    const Status lock_status = items_->Lock(key, txn);
    if (!lock_status.ok()) {
      ++metrics_.local_fast_path;
      ++metrics_.txns_aborted;
      Trace(TraceEventType::kLocalFastPath, txn);
      Trace(TraceEventType::kDecisionAbort, txn);
      TxnResult r;
      r.id = txn;
      r.disposition = TxnDisposition::kAborted;
      r.abort_reason = lock_status.message();
      finish(std::move(r));
      return true;
    }
  }

  // Read inputs and previous values.
  std::map<ItemKey, PolyValue> inputs;
  std::map<ItemKey, PolyValue> previous;
  for (const auto& [key, site] : spec.read_set) {
    Result<PolyValue> value = items_->Read(key);
    if (!value.ok()) {
      ++metrics_.local_fast_path;
      ++metrics_.txns_aborted;
      Trace(TraceEventType::kLocalFastPath, txn);
      Trace(TraceEventType::kDecisionAbort, txn);
      TxnResult r;
      r.id = txn;
      r.disposition = TxnDisposition::kAborted;
      r.abort_reason = value.status().message();
      finish(std::move(r));
      return true;
    }
    inputs.emplace(key, std::move(value).value());
  }
  for (const auto& [key, site] : spec.write_set) {
    const Result<PolyValue> value = items_->Read(key);
    previous.emplace(key, value.ok() ? value.value()
                                     : PolyValue::Certain(Value::Null()));
  }

  PolyTxnOptions options;
  options.max_alternatives = config_.max_alternatives;
  const Result<PolyTxnResult> result =
      ExecutePolyTransaction(inputs, previous, spec.logic, options);
  ++metrics_.local_fast_path;
  Trace(TraceEventType::kLocalFastPath, txn);
  if (!result.ok()) {
    ++metrics_.txns_aborted;
    Trace(TraceEventType::kDecisionAbort, txn);
    TxnResult r;
    r.id = txn;
    r.disposition = TxnDisposition::kAborted;
    r.abort_reason = result.status().message();
    finish(std::move(r));
    return true;
  }
  bool any_uncertain_input = false;
  for (const auto& [key, value] : inputs) {
    any_uncertain_input |= !value.is_certain();
  }
  if (any_uncertain_input) {
    ++metrics_.polytxns;
    Trace(TraceEventType::kAlternativeFork, txn, false,
          result->alternatives_executed);
  }
  metrics_.alternatives_executed += result->alternatives_executed;

  TxnResult r;
  r.id = txn;
  r.output = result->output;
  if (!r.output.is_certain()) {
    ++metrics_.uncertain_outputs;
  }
  if (result->writes.empty()) {
    ++metrics_.txns_read_only;
    Trace(TraceEventType::kReadOnlyDone, txn);
    r.disposition = TxnDisposition::kReadOnly;
    finish(std::move(r));
    return true;
  }
  // Durable decision, then install — mirrors the full path's ordering.
  RecordDecisionDurable(txn, /*commit=*/true);
  Trace(TraceEventType::kDecisionCommit, txn);
  for (const auto& [key, value] : result->writes) {
    InstallValue(key, value);
  }
  ++metrics_.txns_committed;
  r.disposition = TxnDisposition::kCommitted;
  finish(std::move(r));
  return true;
}

void TxnEngine::CoordinatorTimeout(TxnId txn, CoordPhase expected_phase) {
  Outbox out;
  {
    MutexLock lock(&mu_);
    if (crashed_) {
      return;
    }
    auto it = coordinations_.find(txn);
    if (it == coordinations_.end() || it->second.phase != expected_phase) {
      return;  // already progressed
    }
    Decide(txn, /*commit=*/false,
           expected_phase == CoordPhase::kCollecting
               ? "timeout collecting prepare replies"
               : "timeout collecting ready votes",
           &out);
  }
  FlushOutbox(&out);
}

void TxnEngine::HandlePrepareReply(SiteId from, const Message& msg,
                                   Outbox* out) {
  auto it = coordinations_.find(msg.txn);
  if (it == coordinations_.end() ||
      it->second.phase != CoordPhase::kCollecting) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kPrepareReply));
    return;  // stale (txn decided already)
  }
  Coordination& coord = it->second;
  if (!msg.ok) {
    Decide(msg.txn, /*commit=*/false,
           StrCat("participant ", from, " refused: ", msg.error), out);
    return;
  }
  if (coord.awaiting.erase(from) == 0) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kPrepareReply));
    return;  // duplicate
  }
  for (const auto& [key, value] : msg.values) {
    coord.collected.insert_or_assign(key, value);
  }
  Trace(TraceEventType::kVoteCollected, msg.txn,
        /*flag=*/coord.awaiting.empty(), coord.awaiting.size());
  if (!coord.awaiting.empty()) {
    return;
  }
  if (config_.execution_delay <= 0) {
    ExecuteAndShip(msg.txn, &coord, out);
    return;
  }
  // Simulated computation: ship after the configured execution time.
  const TxnId txn = msg.txn;
  ScheduleGuarded(config_.execution_delay, [this, txn] {
    Outbox delayed;
    {
      MutexLock lock(&mu_);
      if (crashed_) {
        return;
      }
      auto coord_it = coordinations_.find(txn);
      if (coord_it == coordinations_.end() ||
          coord_it->second.phase != CoordPhase::kCollecting ||
          !coord_it->second.awaiting.empty()) {
        return;  // aborted or otherwise progressed meanwhile
      }
      ExecuteAndShip(txn, &coord_it->second, &delayed);
    }
    FlushOutbox(&delayed);
  });
}

void TxnEngine::ExecuteAndShip(TxnId txn, Coordination* coord, Outbox* out) {
  scheduler_->Cancel(coord->timer);
  coord->timer = 0;

  // Split the collected values into logic inputs (read set) and previous
  // values (write set); a read-write item appears in both.
  std::map<ItemKey, PolyValue> inputs;
  std::map<ItemKey, PolyValue> previous;
  bool any_uncertain_input = false;
  for (const auto& [key, owner] : coord->spec.read_set) {
    auto it = coord->collected.find(key);
    POLYV_CHECK_MSG(it != coord->collected.end(),
                    "participant did not return read item '" << key << "'");
    any_uncertain_input |= !it->second.is_certain();
    inputs.emplace(key, it->second);
  }
  for (const auto& [key, owner] : coord->spec.write_set) {
    auto it = coord->collected.find(key);
    if (it != coord->collected.end()) {
      previous.emplace(key, it->second);
    }
  }

  PolyTxnOptions options;
  options.max_alternatives = config_.max_alternatives;
  Result<PolyTxnResult> result = ExecutePolyTransaction(
      inputs, previous, coord->spec.logic, options);
  if (!result.ok()) {
    Decide(txn, /*commit=*/false, result.status().message(), out);
    return;
  }
  if (any_uncertain_input) {
    ++metrics_.polytxns;
    Trace(TraceEventType::kAlternativeFork, txn, false,
          result->alternatives_executed);
  }
  metrics_.alternatives_executed += result->alternatives_executed;
  coord->output = result->output;
  if (!coord->output.is_certain()) {
    ++metrics_.uncertain_outputs;
  }

  if (result->writes.empty()) {
    // Read-only: no atomic update needed. Release participant locks with
    // ABORT (they have nothing pending) and report success.
    TxnResult r;
    r.id = txn;
    r.disposition = TxnDisposition::kReadOnly;
    r.output = coord->output;
    ++metrics_.txns_read_only;
    Trace(TraceEventType::kReadOnlyDone, txn);
    for (SiteId site : coord->participants) {
      out->sends.emplace_back(site, MakeAbort(txn));
    }
    out->thunks.push_back([cb = coord->callback, r] { cb(r); });
    coordinations_.erase(txn);
    return;
  }

  // Ship each site its writes. A shipped polyvalue that depends on some
  // unresolved T' obliges us (§3.3) to forward T' outcomes there.
  coord->phase = CoordPhase::kWaitingReady;
  for (SiteId site : coord->participants) {
    std::map<ItemKey, PolyValue> site_writes;
    for (const auto& [key, value] : result->writes) {
      auto owner = coord->spec.write_set.find(key);
      POLYV_CHECK_MSG(owner != coord->spec.write_set.end(),
                      "logic wrote undeclared item '" << key << "'");
      if (owner->second == site) {
        for (TxnId dep : value.Dependencies()) {
          if (site != self_) {
            outcomes_->RecordDownstreamSite(dep, site);
            Wal_(WalRecord::TrackSite(dep, site));
          }
        }
        site_writes.emplace(key, value);
      }
    }
    coord->awaiting.insert(site);
    out->sends.emplace_back(site, MakeWriteReq(txn, std::move(site_writes)));
  }
  Trace(TraceEventType::kWriteShipped, txn, false, coord->participants.size());
  coord->timer = ScheduleGuarded(
      config_.ready_timeout,
      [this, txn] { CoordinatorTimeout(txn, CoordPhase::kWaitingReady); });
}

void TxnEngine::HandleReady(SiteId from, const Message& msg, Outbox* out) {
  auto it = coordinations_.find(msg.txn);
  if (it == coordinations_.end() ||
      it->second.phase != CoordPhase::kWaitingReady) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kReady));
    return;
  }
  if (it->second.awaiting.erase(from) == 0) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kReady));
    return;
  }
  Trace(TraceEventType::kVoteCollected, msg.txn,
        /*flag=*/it->second.awaiting.empty(), it->second.awaiting.size());
  if (it->second.awaiting.empty()) {
    Decide(msg.txn, /*commit=*/true, "", out);
  }
}

void TxnEngine::Decide(TxnId txn, bool commit, const std::string& reason,
                       Outbox* out) {
  auto it = coordinations_.find(txn);
  POLYV_CHECK(it != coordinations_.end());
  Coordination& coord = it->second;
  if (coord.timer != 0) {
    scheduler_->Cancel(coord.timer);
    coord.timer = 0;
  }
  // Durable decision BEFORE any COMPLETE leaves: presumed abort depends
  // on commits never outrunning the log.
  const bool made_writes = coord.phase == CoordPhase::kWaitingReady;
  if (commit || made_writes) {
    RecordDecisionDurable(txn, commit);
  }
  if (commit) {
    ++metrics_.txns_committed;
  } else {
    ++metrics_.txns_aborted;
  }
  Trace(commit ? TraceEventType::kDecisionCommit
               : TraceEventType::kDecisionAbort,
        txn);
  for (SiteId site : coord.participants) {
    out->sends.emplace_back(site,
                            commit ? MakeComplete(txn) : MakeAbort(txn));
  }
  TxnResult r;
  r.id = txn;
  r.disposition =
      commit ? TxnDisposition::kCommitted : TxnDisposition::kAborted;
  r.abort_reason = reason;
  r.output = commit ? coord.output : PolyValue();
  out->thunks.push_back([cb = coord.callback, r] { cb(r); });
  coordinations_.erase(it);
}

void TxnEngine::HandleOutcomeRequest(SiteId from, const Message& msg,
                                     Outbox* out) {
  if (CoordinatorOf(msg.txn) == self_) {
    auto decided = decided_.find(msg.txn);
    if (decided != decided_.end()) {
      Trace(TraceEventType::kOutcomeReplied, msg.txn, /*flag=*/true,
            from.value());
      out->sends.emplace_back(
          from, MakeOutcomeReply(msg.txn, true, decided->second));
      return;
    }
    if (coordinations_.count(msg.txn) > 0) {
      // Still in flight: genuinely unknown.
      Trace(TraceEventType::kOutcomeReplied, msg.txn, /*flag=*/false,
            from.value());
      out->sends.emplace_back(from, MakeOutcomeReply(msg.txn, false, false));
      return;
    }
    // No record: we never logged a commit, so no COMPLETE was ever sent.
    // Presumed abort.
    Trace(TraceEventType::kOutcomeReplied, msg.txn, /*flag=*/true,
          from.value());
    out->sends.emplace_back(from, MakeOutcomeReply(msg.txn, true, false));
    return;
  }
  // Not our transaction; answer from the resolved cache if we can.
  const std::optional<bool> known = outcomes_->KnownOutcome(msg.txn);
  Trace(TraceEventType::kOutcomeReplied, msg.txn, known.has_value(),
        from.value());
  out->sends.emplace_back(
      from, MakeOutcomeReply(msg.txn, known.has_value(),
                             known.value_or(false)));
}

}  // namespace polyvalue
