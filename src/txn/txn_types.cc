#include "src/txn/txn_types.h"

#include <set>

#include "src/common/check.h"

namespace polyvalue {

const Value& TxnReads::at(const ItemKey& key) const {
  auto it = values_.find(key);
  POLYV_CHECK_MSG(it != values_.end(),
                  "read set missing item '" << key << "'");
  if (access_tracker_ != nullptr) {
    access_tracker_->insert(key);
  }
  return it->second;
}

bool TxnReads::Has(const ItemKey& key) const {
  if (access_tracker_ != nullptr) {
    access_tracker_->insert(key);
  }
  return values_.count(key) > 0;
}

const std::map<ItemKey, Value>& TxnReads::All() const {
  if (access_tracker_ != nullptr) {
    for (const auto& [key, value] : values_) {
      access_tracker_->insert(key);
    }
  }
  return values_;
}

const Value& TxnReads::RawAt(const ItemKey& key) const {
  auto it = values_.find(key);
  POLYV_CHECK_MSG(it != values_.end(),
                  "memo key missing item '" << key << "'");
  return it->second;
}

int64_t TxnReads::IntAt(const ItemKey& key) const {
  const Result<int64_t> v = at(key).AsInt();
  POLYV_CHECK_MSG(v.ok(), "item '" << key << "' is not an int");
  return v.value();
}

double TxnReads::RealAt(const ItemKey& key) const {
  const Result<double> v = at(key).AsReal();
  POLYV_CHECK_MSG(v.ok(), "item '" << key << "' is not numeric");
  return v.value();
}

TxnEffect TxnEffect::Abort(std::string reason) {
  TxnEffect e;
  e.abort = true;
  e.abort_reason = std::move(reason);
  return e;
}

std::vector<SiteId> TxnSpec::Participants() const {
  std::set<SiteId> sites;
  for (const auto& [key, site] : read_set) {
    sites.insert(site);
  }
  for (const auto& [key, site] : write_set) {
    sites.insert(site);
  }
  return std::vector<SiteId>(sites.begin(), sites.end());
}

TxnSpec& TxnSpec::Read(ItemKey key, SiteId site) {
  read_set.emplace(std::move(key), site);
  return *this;
}

TxnSpec& TxnSpec::Write(ItemKey key, SiteId site) {
  write_set.emplace(std::move(key), site);
  return *this;
}

TxnSpec& TxnSpec::ReadWrite(ItemKey key, SiteId site) {
  read_set.emplace(key, site);
  write_set.emplace(std::move(key), site);
  return *this;
}

TxnSpec& TxnSpec::Logic(TxnLogic logic_fn) {
  logic = std::move(logic_fn);
  return *this;
}

}  // namespace polyvalue
