// Transaction model types.
//
// A transaction is user logic — a pure function from read values to
// writes plus an optional client-visible output — together with declared
// read/write sets mapping items to the sites that hold them. Purity
// matters: a polytransaction (§3.2) re-executes the same logic once per
// alternative database state, so the logic must not carry side effects.
#ifndef SRC_TXN_TXN_TYPES_H_
#define SRC_TXN_TXN_TYPES_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/poly/polyvalue.h"
#include "src/value/value.h"

namespace polyvalue {

// The view of the database one alternative executes against: every item
// in the read set resolved to a simple value.
//
// Every access is recorded when a tracker is attached: the
// polytransaction executor uses this to implement §3.2's optimisation —
// alternatives that differ only in items the logic never looked at share
// one execution instead of re-running. The map is private so logic
// cannot accidentally bypass the tracking; All() grants whole-set
// iteration and conservatively marks everything accessed.
class TxnReads {
 public:
  TxnReads() = default;

  // Tracked accessors for transaction logic.
  const Value& at(const ItemKey& key) const;
  int64_t IntAt(const ItemKey& key) const;
  double RealAt(const ItemKey& key) const;
  bool Has(const ItemKey& key) const;  // tracked (existence reveals state)

  // Whole-set view; marks every item accessed.
  const std::map<ItemKey, Value>& All() const;

  size_t size() const { return values_.size(); }

  // --- executor/engine plumbing ---
  void Insert(ItemKey key, Value value) {
    values_.insert_or_assign(std::move(key), std::move(value));
  }
  void set_access_tracker(std::set<ItemKey>* tracker) {
    access_tracker_ = tracker;
  }
  // Untracked lookup for the executor's memo key (not for logic).
  const Value& RawAt(const ItemKey& key) const;

 private:
  std::map<ItemKey, Value> values_;
  // Recorder owned by the executor; null for plain use.
  std::set<ItemKey>* access_tracker_ = nullptr;
};

// What one execution of the logic decided.
struct TxnEffect {
  // Items to update (must be within the declared write set).
  std::map<ItemKey, Value> writes;
  // Client-visible output (reservation granted?, new balance, ...).
  std::optional<Value> output;
  // Business-logic abort (insufficient funds, sold out). An abort by any
  // reachable alternative aborts the whole transaction — the engine keeps
  // the commit decision binary.
  bool abort = false;
  std::string abort_reason;

  static TxnEffect Abort(std::string reason);
};

using TxnLogic = std::function<TxnEffect(const TxnReads&)>;

// A transaction as submitted to a coordinator.
struct TxnSpec {
  // Item -> owning site, for every item read.
  std::map<ItemKey, SiteId> read_set;
  // Item -> owning site, for every item possibly written.
  std::map<ItemKey, SiteId> write_set;
  TxnLogic logic;

  // Sites participating (union over both sets).
  std::vector<SiteId> Participants() const;

  // Convenience builder helpers.
  TxnSpec& Read(ItemKey key, SiteId site);
  TxnSpec& Write(ItemKey key, SiteId site);
  TxnSpec& ReadWrite(ItemKey key, SiteId site);
  TxnSpec& Logic(TxnLogic logic_fn);
};

// Final disposition reported to the client.
enum class TxnDisposition {
  kCommitted,      // outcome decided commit; output may still be uncertain
  kAborted,        // outcome decided abort (conflict, failure, or logic)
  kReadOnly,       // no writes were produced; logically committed
};

struct TxnResult {
  TxnId id;
  TxnDisposition disposition = TxnDisposition::kAborted;
  std::string abort_reason;
  // The output value; a polyvalue when the answer depends on unresolved
  // transactions (§3.4: the caller chooses to use or to wait).
  PolyValue output;

  bool committed() const {
    return disposition != TxnDisposition::kAborted;
  }
};

using TxnCallback = std::function<void(const TxnResult&)>;

}  // namespace polyvalue

#endif  // SRC_TXN_TXN_TYPES_H_
