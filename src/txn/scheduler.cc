#include "src/txn/scheduler.h"

#include <chrono>
#include <vector>

namespace polyvalue {

ThreadScheduler::ThreadScheduler() : epoch_(Clock::now()) {
  worker_ = std::thread([this] { Loop(); });
}

ThreadScheduler::~ThreadScheduler() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  if (worker_.joinable()) {
    worker_.join();
  }
}

double ThreadScheduler::Now() const {
  return std::chrono::duration<double>(Clock::now() - epoch_).count();
}

Scheduler::TimerId ThreadScheduler::ScheduleAfter(double delay_seconds,
                                                  Action action) {
  const auto fire_at =
      Clock::now() + std::chrono::microseconds(
                         static_cast<int64_t>(delay_seconds * 1e6));
  TimerId id;
  {
    MutexLock lock(&mu_);
    id = next_id_++;
    timers_.emplace(fire_at, std::make_pair(id, std::move(action)));
  }
  cv_.NotifyAll();
  return id;
}

bool ThreadScheduler::Cancel(TimerId id) {
  MutexLock lock(&mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.first == id) {
      timers_.erase(it);
      return true;
    }
  }
  return false;
}

void ThreadScheduler::Loop() {
  mu_.Lock();
  for (;;) {
    if (stopping_) {
      mu_.Unlock();
      return;
    }
    if (timers_.empty()) {
      // Spurious wakeups are fine: the loop head re-checks.
      cv_.Wait(&mu_);
      continue;
    }
    const auto next_fire = timers_.begin()->first;
    if (Clock::now() < next_fire) {
      (void)cv_.WaitUntil(&mu_, next_fire);
      continue;
    }
    auto entry = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    mu_.Unlock();
    entry.second();  // run outside the lock; action may reschedule
    mu_.Lock();
  }
}

}  // namespace polyvalue
