// Shared engine internals: construction, message dispatch, install path,
// outcome learning/propagation, crash/recovery, durability plumbing.
#include "src/txn/engine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/strings.h"

namespace polyvalue {

const char* InDoubtPolicyName(InDoubtPolicy policy) {
  switch (policy) {
    case InDoubtPolicy::kPolyvalue:
      return "polyvalue";
    case InDoubtPolicy::kBlock:
      return "block";
    case InDoubtPolicy::kArbitrary:
      return "arbitrary";
  }
  return "?";
}

const char* ProtocolLegName(ProtocolLeg leg) {
  switch (leg) {
    case ProtocolLeg::kTwoPhase:
      return "two_phase";
    case ProtocolLeg::kPaxosCommit:
      return "paxos_commit";
  }
  return "?";
}

void EngineMetrics::Accumulate(const EngineMetrics& other) {
  txns_submitted += other.txns_submitted;
  txns_committed += other.txns_committed;
  txns_aborted += other.txns_aborted;
  txns_read_only += other.txns_read_only;
  polytxns += other.polytxns;
  alternatives_executed += other.alternatives_executed;
  uncertain_outputs += other.uncertain_outputs;
  polyvalue_installs += other.polyvalue_installs;
  polyvalues_resolved += other.polyvalues_resolved;
  wait_timeouts += other.wait_timeouts;
  blocked_holds += other.blocked_holds;
  arbitrary_commits += other.arbitrary_commits;
  outcome_inquiries += other.outcome_inquiries;
  outcome_notifies += other.outcome_notifies;
  local_fast_path += other.local_fast_path;
  lock_waits += other.lock_waits;
  lock_wait_resumes += other.lock_wait_resumes;
  paxos_votes += other.paxos_votes;
  paxos_accepts += other.paxos_accepts;
  paxos_failovers += other.paxos_failovers;
  paxos_recovery_ballots += other.paxos_recovery_ballots;
  compute_phase_seconds += other.compute_phase_seconds;
  compute_phase_count += other.compute_phase_count;
  wait_phase_seconds += other.wait_phase_seconds;
  wait_phase_count += other.wait_phase_count;
  wait_phase_max = std::max(wait_phase_max, other.wait_phase_max);
}

void EngineMetrics::ExportTo(MetricsRegistry* registry,
                             const std::string& prefix) const {
  registry->SetCounter(prefix + "txns_submitted", txns_submitted);
  registry->SetCounter(prefix + "txns_committed", txns_committed);
  registry->SetCounter(prefix + "txns_aborted", txns_aborted);
  registry->SetCounter(prefix + "txns_read_only", txns_read_only);
  registry->SetCounter(prefix + "polytxns", polytxns);
  registry->SetCounter(prefix + "alternatives_executed",
                       alternatives_executed);
  registry->SetCounter(prefix + "uncertain_outputs", uncertain_outputs);
  registry->SetCounter(prefix + "polyvalue_installs", polyvalue_installs);
  registry->SetCounter(prefix + "polyvalues_resolved", polyvalues_resolved);
  registry->SetCounter(prefix + "wait_timeouts", wait_timeouts);
  registry->SetCounter(prefix + "blocked_holds", blocked_holds);
  registry->SetCounter(prefix + "arbitrary_commits", arbitrary_commits);
  registry->SetCounter(prefix + "outcome_inquiries", outcome_inquiries);
  registry->SetCounter(prefix + "outcome_notifies", outcome_notifies);
  registry->SetCounter(prefix + "local_fast_path", local_fast_path);
  registry->SetCounter(prefix + "lock_waits", lock_waits);
  registry->SetCounter(prefix + "lock_wait_resumes", lock_wait_resumes);
  registry->SetCounter(prefix + "paxos_votes", paxos_votes);
  registry->SetCounter(prefix + "paxos_accepts", paxos_accepts);
  registry->SetCounter(prefix + "paxos_failovers", paxos_failovers);
  registry->SetCounter(prefix + "paxos_recovery_ballots",
                       paxos_recovery_ballots);
  registry->SetCounter(prefix + "compute_phase_count", compute_phase_count);
  registry->SetCounter(prefix + "wait_phase_count", wait_phase_count);
  registry->Gauge(prefix + "compute_phase_seconds", compute_phase_seconds);
  registry->Gauge(prefix + "wait_phase_seconds", wait_phase_seconds);
  registry->Gauge(prefix + "wait_phase_max", wait_phase_max);
}

TxnEngine::TxnEngine(SiteId self, ItemStore* items, OutcomeTable* outcomes,
                     Scheduler* scheduler, SendFn send, EngineConfig config)
    : self_(self),
      items_(items),
      outcomes_(outcomes),
      scheduler_(scheduler),
      send_(std::move(send)),
      config_(config) {
  POLYV_CHECK(self.valid());
  POLYV_CHECK_LT(self.value(), 1ULL << (64 - kSiteShift));
}

TxnEngine::~TxnEngine() { *alive_ = false; }

Scheduler::TimerId TxnEngine::ScheduleGuarded(double delay,
                                              std::function<void()> fn) {
  return scheduler_->ScheduleAfter(
      delay, [alive = alive_, fn = std::move(fn)] {
        if (*alive) {
          fn();
        }
      });
}

TxnId TxnEngine::AllocateTxnId() {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  return TxnId((self_.value() << kSiteShift) | seq);
}

void TxnEngine::RaiseSeqFloor(uint64_t max_seq) {
  uint64_t cur = next_seq_.load(std::memory_order_relaxed);
  while (max_seq >= cur &&
         !next_seq_.compare_exchange_weak(cur, max_seq + 1,
                                          std::memory_order_relaxed)) {
  }
}

SiteId TxnEngine::CoordinatorOf(TxnId txn) {
  return SiteId(txn.value() >> kSiteShift);
}

void TxnEngine::OnMessage(SiteId from, const Message& msg) {
  Outbox out;
  {
    MutexLock lock(&mu_);
    if (crashed_) {
      return;  // a down site neither sends nor receives
    }
    POLYV_TRACE << self_ << " <- " << from << " " << MsgTypeName(msg.type)
                << " " << msg.txn;
    switch (msg.type) {
      case MsgType::kPrepare:
        HandlePrepare(from, msg, &out);
        break;
      case MsgType::kPrepareReply:
        HandlePrepareReply(from, msg, &out);
        break;
      case MsgType::kWriteReq:
        HandleWriteReq(from, msg, &out);
        break;
      case MsgType::kReady:
        HandleReady(from, msg, &out);
        break;
      case MsgType::kComplete:
        HandleComplete(msg, &out);
        break;
      case MsgType::kAbort:
        HandleAbort(msg, &out);
        break;
      case MsgType::kOutcomeRequest:
        HandleOutcomeRequest(from, msg, &out);
        break;
      case MsgType::kOutcomeReply:
        HandleOutcomeReply(msg, &out);
        break;
      case MsgType::kOutcomeNotify:
        HandleOutcomeNotify(from, msg, &out);
        break;
      case MsgType::kPaxosPhase1a:
      case MsgType::kPaxosPhase1b:
      case MsgType::kPaxosPhase2a:
      case MsgType::kPaxosPhase2b:
      case MsgType::kPaxosDecision:
      case MsgType::kPaxosNudge:
        // Paxos Commit traffic belongs to the PaxosEngine leg; a 2PC
        // engine that receives it discards it loudly.
        Trace(TraceEventType::kMsgIgnored, msg.txn, false,
              static_cast<uint64_t>(msg.type));
        break;
    }
  }
  FlushOutbox(&out);
}

void TxnEngine::FlushOutbox(Outbox* out) {
  // Group-commit barrier: nothing externally visible — no message, no
  // client callback — leaves this engine until every WAL record logged
  // so far is durable. Under per-append sync policies this is a no-op;
  // under group commit it coalesces all records appended during the
  // locked section (and by concurrent transactions) into one
  // write+fsync, performed here, outside the engine lock.
  if (wal_ != nullptr && !(out->sends.empty() && out->thunks.empty())) {
    const Status s = wal_->Flush();
    if (!s.ok()) {
      POLYV_ERROR << self_ << " WAL flush failed: " << s;
    }
  }
  for (auto& [to, msg] : out->sends) {
    send_(to, msg);
  }
  for (auto& thunk : out->thunks) {
    thunk();
  }
  out->sends.clear();
  out->thunks.clear();
}

void TxnEngine::Wal_(const WalRecord& record) {
  if (wal_ != nullptr) {
    const Status s = wal_->Append(record);
    if (!s.ok()) {
      POLYV_ERROR << self_ << " WAL append failed: " << s;
    }
  }
}

// Installs a value, keeping the §3.3 dependency table consistent: drop
// tracking entries of the overwritten value's dependencies, register the
// new value's, and log everything.
//
// Dependencies whose outcome this site already knows are reduced away
// first: a write computed from a polyvalue can arrive after its
// underlying transaction resolved here, and recording a dependency on an
// already-resolved transaction would leave a pending-table entry that no
// future LearnOutcome will clear.
void TxnEngine::InstallValue(const ItemKey& key, const PolyValue& raw_value) {
  PolyValue value = raw_value;
  for (TxnId dep : raw_value.Dependencies()) {
    const std::optional<bool> known = outcomes_->KnownOutcome(dep);
    if (known.has_value()) {
      value = value.Reduce(dep, *known);
    }
  }
  const Result<PolyValue> previous = items_->Read(key);
  const bool was_uncertain = previous.ok() && !previous.value().is_certain();
  if (previous.ok()) {
    for (TxnId dep : previous.value().Dependencies()) {
      outcomes_->ForgetDependentItem(dep, key);
      Wal_(WalRecord::UntrackItem(dep, key));
    }
    if (was_uncertain && value.is_certain()) {
      ++metrics_.polyvalues_resolved;
      TraceKey(TraceEventType::kPolyReduce, TxnId(), key);
    }
  }
  if (trace_ != nullptr && !was_uncertain && !value.is_certain()) {
    const std::vector<TxnId> deps = value.Dependencies();
    TraceKey(TraceEventType::kPolyInstall,
             deps.empty() ? TxnId() : deps.front(), key);
  }
  items_->Write(key, value);
  Wal_(WalRecord::Write(key, value));
  for (TxnId dep : value.Dependencies()) {
    outcomes_->RecordDependentItem(dep, key);
    Wal_(WalRecord::TrackItem(dep, key));
  }
  if (config_.validate_installs && !value.is_certain()) {
    POLYV_CHECK_MSG(value.Validate(),
                    "installed polyvalue violates complete/disjoint: "
                    << value.ToString());
  }
}

// §3.3: a learned outcome reduces local dependents, is forwarded to every
// recorded downstream site, and the entry is then forgotten.
void TxnEngine::HandleLearnedOutcome(TxnId txn, bool committed,
                                     Outbox* out) {
  const OutcomeTable::Resolution res =
      outcomes_->LearnOutcome(txn, committed);
  if (res.already_known) {
    // Redundant outcome information (duplicate COMPLETE/ABORT/NOTIFY or
    // an inquiry answer that raced a push).
    Trace(TraceEventType::kMsgIgnored, txn, committed);
    return;
  }
  Trace(TraceEventType::kOutcomeLearned, txn, committed);
  Wal_(WalRecord::Outcome(txn, committed));
  for (const ItemKey& key : res.items_to_reduce) {
    const Result<PolyValue> current = items_->Read(key);
    if (!current.ok()) {
      continue;
    }
    const PolyValue reduced = current.value().Reduce(txn, committed);
    if (reduced == current.value()) {
      continue;
    }
    if (!current.value().is_certain() && reduced.is_certain()) {
      ++metrics_.polyvalues_resolved;
      TraceKey(TraceEventType::kPolyReduce, txn, key, committed);
    }
    items_->Write(key, reduced);
    Wal_(WalRecord::Write(key, reduced));
    // Remaining dependencies of `reduced` are already tracked (they were
    // dependencies of `current` too).
  }
  for (SiteId site : res.sites_to_notify) {
    if (site == self_) {
      continue;
    }
    ++metrics_.outcome_notifies;
    Trace(TraceEventType::kOutcomeNotify, txn, committed, site.value());
    out->sends.emplace_back(site, MakeOutcomeNotify(txn, committed));
  }
  // A blocked (kBlock) or still-pending participation on this txn can now
  // finish.
  auto it = participations_.find(txn);
  if (it != participations_.end() && it->second.state == PartState::kWait) {
    FinishParticipation(txn, &it->second, committed, out);
  }
  // Release §3.4 withheld-output subscribers.
  auto subs = outcome_subscribers_.find(txn);
  if (subs != outcome_subscribers_.end()) {
    for (OutcomeCallback& callback : subs->second) {
      out->thunks.push_back(
          [callback = std::move(callback), committed] {
            callback(committed);
          });
    }
    outcome_subscribers_.erase(subs);
  }
}

void TxnEngine::HandleOutcomeReply(const Message& msg, Outbox* out) {
  if (!msg.known) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kOutcomeReply));
    return;  // coordinator undecided; inquiry loop will retry
  }
  HandleLearnedOutcome(msg.txn, msg.committed, out);
}

void TxnEngine::HandleOutcomeNotify(SiteId from, const Message& msg,
                                    Outbox* out) {
  (void)from;
  HandleLearnedOutcome(msg.txn, msg.committed, out);
}

// Periodic pull: ask the coordinator of every still-unknown transaction.
// This backstops lost OutcomeNotify pushes and coordinator crashes.
void TxnEngine::InquiryTick() {
  Outbox out;
  {
    MutexLock lock(&mu_);
    if (crashed_) {
      inquiry_loop_running_ = false;
      return;
    }
    std::vector<TxnId> unknown = outcomes_->UnknownTransactions();
    // Blocked participations also need their outcome even when no local
    // polyvalue records the dependency.
    for (const auto& [txn, part] : participations_) {
      if (part.state == PartState::kWait && part.blocked) {
        unknown.push_back(txn);
      }
    }
    if (unknown.empty()) {
      inquiry_loop_running_ = false;
      return;
    }
    for (TxnId txn : unknown) {
      const SiteId coordinator = CoordinatorOf(txn);
      if (coordinator == self_) {
        // We are the coordinator: resolve locally (presumed abort if no
        // record — we crashed before deciding).
        auto decided = decided_.find(txn);
        const bool known_commit =
            decided != decided_.end() && decided->second;
        const bool in_flight = coordinations_.count(txn) > 0;
        if (!in_flight) {
          HandleLearnedOutcome(txn, known_commit, &out);
        }
        continue;
      }
      ++metrics_.outcome_inquiries;
      Trace(TraceEventType::kOutcomeInquiry, txn, false,
            coordinator.value());
      out.sends.emplace_back(coordinator, MakeOutcomeRequest(txn));
    }
    ScheduleGuarded(config_.inquiry_interval, [this] { InquiryTick(); });
  }
  FlushOutbox(&out);
}

void TxnEngine::EnsureInquiryLoop() {
  bool start = false;
  {
    MutexLock lock(&mu_);
    if (!inquiry_loop_running_ && !crashed_) {
      inquiry_loop_running_ = true;
      start = true;
    }
  }
  if (start) {
    ScheduleGuarded(config_.inquiry_interval, [this] { InquiryTick(); });
  }
}

void TxnEngine::MarkPreparedDurable(
    TxnId txn, SiteId coordinator,
    const std::map<ItemKey, PolyValue>& writes) {
  prepared_[txn] = Prepared{coordinator, writes};
  Wal_(WalRecord::Prepared(txn, coordinator, writes));
}

void TxnEngine::ClearPreparedDurable(TxnId txn) {
  prepared_.erase(txn);
  Wal_(WalRecord::PreparedResolved(txn));
}

void TxnEngine::RecordDecisionDurable(TxnId txn, bool commit) {
  decided_[txn] = commit;
  Wal_(WalRecord::Outcome(txn, commit));
}

void TxnEngine::Crash() {
  std::vector<TxnCallback> orphaned;
  {
    MutexLock lock(&mu_);
    Trace(TraceEventType::kCrash, TxnId());
    crashed_ = true;
    for (auto& [txn, coord] : coordinations_) {
      if (coord.timer != 0) {
        scheduler_->Cancel(coord.timer);
      }
      // In-flight clients never hear back — exactly the real failure mode.
      (void)orphaned;
    }
    coordinations_.clear();
    for (auto& [txn, part] : participations_) {
      if (part.wait_timer != 0) {
        scheduler_->Cancel(part.wait_timer);
      }
      items_->CancelWaits(txn);
      (void)items_->UnlockAll(txn);
    }
    participations_.clear();
    outcome_subscribers_.clear();  // volatile, like in-flight clients
    inquiry_loop_running_ = false;
  }
}

void TxnEngine::Recover() {
  Outbox out;
  {
    MutexLock lock(&mu_);
    crashed_ = false;
    Trace(TraceEventType::kRecover, TxnId(), false, prepared_.size());
    // Re-enter the in-doubt path for every prepared-but-undecided
    // transaction that survived in the durable state.
    std::vector<TxnId> pending;
    for (const auto& [txn, prepared] : prepared_) {
      pending.push_back(txn);
    }
    for (TxnId txn : pending) {
      const Prepared& prepared = prepared_.at(txn);
      // If we already learned the outcome (e.g. via WAL outcome records),
      // finish directly.
      const std::optional<bool> known = outcomes_->KnownOutcome(txn);
      Participation part;
      part.coordinator = prepared.coordinator;
      part.state = PartState::kWait;
      part.pending_writes = prepared.writes;
      // Re-acquire the write locks the crash released: a blocked (kBlock)
      // participation that resolves to COMMIT later will install its
      // prepared writes, and without the locks an interleaved transaction
      // could be silently overwritten (lost update). Immediately after
      // recovery nothing else can hold these locks.
      for (const auto& [key, value] : prepared.writes) {
        const Status locked = items_->Lock(key, txn);
        POLYV_CHECK_MSG(locked.ok(), "post-recovery relock failed for '"
                                         << key << "': " << locked);
        part.locked_keys.push_back(key);
      }
      auto [it, inserted] = participations_.emplace(txn, std::move(part));
      POLYV_CHECK(inserted);
      if (known.has_value()) {
        FinishParticipation(txn, &it->second, *known, &out);
      } else {
        ApplyInDoubtPolicy(txn, &it->second, &out);
      }
    }
  }
  FlushOutbox(&out);
  EnsureInquiryLoop();
}

void TxnEngine::RestoreDurableState(const std::vector<WalRecord>& records) {
  MutexLock lock(&mu_);
  uint64_t max_seq = 0;
  for (const WalRecord& record : records) {
    switch (record.type) {
      case WalRecordType::kOutcome:
        if (CoordinatorOf(record.txn) == self_) {
          decided_[record.txn] = record.committed;
          max_seq = std::max<uint64_t>(
              max_seq, record.txn.value() & ((1ULL << kSiteShift) - 1));
        }
        break;
      case WalRecordType::kPrepared:
        prepared_[record.txn] = Prepared{record.site, record.writes};
        break;
      case WalRecordType::kPreparedResolved:
        prepared_.erase(record.txn);
        break;
      default:
        break;
    }
  }
  RaiseSeqFloor(max_seq);
}

void TxnEngine::SubscribeOutcome(TxnId txn, OutcomeCallback callback) {
  Outbox out;
  {
    MutexLock lock(&mu_);
    std::optional<bool> known = outcomes_->KnownOutcome(txn);
    if (!known.has_value()) {
      auto decided = decided_.find(txn);
      if (decided != decided_.end()) {
        known = decided->second;
      }
    }
    if (known.has_value()) {
      out.thunks.push_back(
          [callback = std::move(callback), value = *known] {
            callback(value);
          });
    } else {
      outcome_subscribers_[txn].push_back(std::move(callback));
      // Make sure somebody is chasing this outcome.
      outcomes_->RecordDependentItem(txn, "");
      outcomes_->ForgetDependentItem(txn, "");
      out.thunks.push_back([this] { EnsureInquiryLoop(); });
    }
  }
  FlushOutbox(&out);
}

void TxnEngine::ExportDurableState(SiteSnapshot* snapshot) const {
  MutexLock lock(&mu_);
  for (const auto& [txn, prepared] : prepared_) {
    snapshot->prepared.push_back(
        {txn, prepared.coordinator, prepared.writes});
  }
  snapshot->decided = decided_;
}

void TxnEngine::ImportDurableState(const SiteSnapshot& snapshot) {
  MutexLock lock(&mu_);
  for (const SiteSnapshot::PreparedTxn& p : snapshot.prepared) {
    prepared_[p.txn] = Prepared{p.coordinator, p.writes};
  }
  uint64_t max_seq = 0;
  for (const auto& [txn, committed] : snapshot.decided) {
    decided_[txn] = committed;
    if (CoordinatorOf(txn) == self_) {
      max_seq = std::max<uint64_t>(
          max_seq, txn.value() & ((1ULL << kSiteShift) - 1));
    }
  }
  RaiseSeqFloor(max_seq);
}

EngineMetrics TxnEngine::metrics() const {
  MutexLock lock(&mu_);
  return metrics_;
}

std::optional<bool> TxnEngine::DecidedOutcome(TxnId txn) const {
  MutexLock lock(&mu_);
  auto it = decided_.find(txn);
  if (it == decided_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace polyvalue
