// Polytransaction execution (§3.2).
//
// A transaction that reads an item holding a polyvalue becomes a
// polytransaction: it is partitioned into alternative transactions, one
// per reachable combination of input alternatives. Each alternative T_c
// executes the user logic against simple values and carries the condition
// c — the conjunction of the conditions of the input alternatives it
// consumed. Alternatives whose condition is logically false are pruned
// *before* execution (the paper's efficiency rule), and inputs whose
// uncertainty cannot affect the computation add no partitions beyond the
// condition bookkeeping.
//
// The outputs are reassembled into polyvalues: for each written item, the
// pair set {⟨v_c, c⟩} where v_c is the value alternative T_c wrote, or
// the item's previous value when T_c did not write it (§3.2's rule).
// Because the input conditions of each item are complete and disjoint,
// the produced conditions are complete and disjoint by construction.
#ifndef SRC_TXN_POLYTXN_H_
#define SRC_TXN_POLYTXN_H_

#include <map>

#include "src/common/status.h"
#include "src/poly/polyvalue.h"
#include "src/txn/txn_types.h"

namespace polyvalue {

struct PolyTxnResult {
  // Computed new values per written item; a polyvalue when alternatives
  // disagree. Items no alternative wrote are absent.
  std::map<ItemKey, PolyValue> writes;
  // Client-visible output across alternatives.
  PolyValue output;
  // Number of alternative transactions actually executed.
  size_t alternatives_executed = 0;
  // Number of alternative combinations pruned as logically false.
  size_t alternatives_pruned = 0;
  // Alternatives served from the access-tracked execution cache (§3.2:
  // uncertainty that cannot affect the computation causes no extra runs).
  size_t alternatives_memoized = 0;
};

struct PolyTxnOptions {
  // Hard cap on the alternative fan-out; exceeded => FAILED_PRECONDITION.
  size_t max_alternatives = 1024;
};

// Executes `logic` against (possibly polyvalued) inputs.
//
// `inputs` must cover the logic's whole read set. `previous` supplies the
// current stored value of each *written* item so unwritten-under-some-
// alternatives items fall back to their previous value; keys absent from
// `previous` that some alternative leaves unwritten default to Null.
//
// Fails with ABORTED if any reachable alternative aborts (conservative:
// the commit decision must be binary). Other logic failures propagate.
Result<PolyTxnResult> ExecutePolyTransaction(
    const std::map<ItemKey, PolyValue>& inputs,
    const std::map<ItemKey, PolyValue>& previous, const TxnLogic& logic,
    const PolyTxnOptions& options = {});

}  // namespace polyvalue

#endif  // SRC_TXN_POLYTXN_H_
