// The transaction engine: coordinator + participant roles of one site.
//
// One TxnEngine instance runs per site. It implements:
//
//   * the coordinator role — drives the two-phase protocol for
//     transactions submitted at this site: collect reads (compute phase),
//     execute the (poly)transaction, ship writes, gather READY votes,
//     decide, distribute COMPLETE/ABORT, answer outcome inquiries
//     (with presumed-abort for transactions it has no record of);
//   * the participant role — Figure 1's state machine: idle → compute
//     (on PREPARE: lock + read) → wait (on WRITE_REQ: vote READY) →
//     idle, where leaving `wait` happens on COMPLETE, on ABORT, or on
//     the wait timeout, which applies the configured in-doubt policy;
//   * outcome propagation (§3.3) — learned outcomes reduce dependent
//     local polyvalues, are pushed to recorded downstream sites, and a
//     periodic inquiry loop pulls outcomes of still-unknown transactions
//     from their coordinators (the transaction id encodes its
//     coordinator, so any site can route an inquiry).
//
// The in-doubt policy is where the paper's contribution and its two foils
// live side by side:
//
//   kPolyvalue  — §2.4/§3: install {⟨computed, T⟩, ⟨previous, ¬T⟩}
//                 polyvalues, RELEASE the locks, move on.
//   kBlock      — §2.2 classic blocking 2PC: hold the locks until the
//                 outcome is learned.
//   kArbitrary  — §2.3 relaxed consistency: unilaterally commit; fast
//                 but can violate atomicity (the benches count it).
//
// Thread-safety: one mutex guards protocol state (coordinations,
// participations, durable tables); all outbound sends, timer programs
// and client callbacks are deferred to after unlock, so the engine never
// calls out while holding its lock. Hot-path work that doesn't need the
// protocol state stays off that mutex: txn-id allocation is a lone
// atomic, item data lives in the ItemStore's own sharded locks, and WAL
// group-commit fsyncs happen at the FlushOutbox barrier — after unlock.
// The same object is driven by the deterministic simulator and by real
// threads.
#ifndef SRC_TXN_ENGINE_H_
#define SRC_TXN_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/item_store.h"
#include "src/store/outcome_table.h"
#include "src/store/snapshot.h"
#include "src/store/wal.h"
#include "src/txn/messages.h"
#include "src/txn/polytxn.h"
#include "src/txn/scheduler.h"
#include "src/txn/txn_types.h"

namespace polyvalue {

enum class InDoubtPolicy {
  kPolyvalue,  // install polyvalues, release locks (the paper)
  kBlock,      // hold locks until the outcome is known (classic 2PC)
  kArbitrary,  // unilaterally commit (relaxed consistency, §2.3)
};

const char* InDoubtPolicyName(InDoubtPolicy policy);

// Which commit protocol a site runs. All legs share the transports,
// stores, scheduler, trace taxonomy and workload generators; cluster
// assemblies pick one leg for the whole (homogeneous) cluster.
enum class ProtocolLeg {
  kTwoPhase,     // coordinator-driven 2PC + the in-doubt policy above
  kPaxosCommit,  // Gray-Lamport Paxos Commit: the decision is chosen by
                 // one Paxos instance per participant RM, so a crashed
                 // coordinator never strands prepared participants
};

const char* ProtocolLegName(ProtocolLeg leg);

// How a participant treats a lock conflict during PREPARE.
enum class LockWaitPolicy {
  kNoWait,   // immediate refusal (deadlock-free by construction)
  kWaitDie,  // older requesters queue behind younger holders; younger
             // requesters die. Waits only point old -> young, so no
             // cycles — deadlock-free with far fewer aborts under
             // contention.
};

struct EngineConfig {
  // Coordinator: max wait for all PREPARE_REPLYs before aborting.
  double prepare_timeout = 0.25;
  // Coordinator: max wait for all READYs before aborting.
  double ready_timeout = 0.25;
  // Participant: in-doubt window after READY before the policy applies.
  double wait_timeout = 0.15;
  // Participant: period of outcome-inquiry retries.
  double inquiry_interval = 1.0;
  // Cap on polytransaction fan-out.
  size_t max_alternatives = 1024;
  // In-doubt behaviour.
  InDoubtPolicy policy = InDoubtPolicy::kPolyvalue;
  // Lock-conflict behaviour during PREPARE.
  LockWaitPolicy lock_wait = LockWaitPolicy::kNoWait;
  // Debug: exact complete/disjoint validation of every installed
  // polyvalue (expensive; on in tests).
  bool validate_installs = false;
  // Simulated computation time: the coordinator defers executing the
  // transaction logic and shipping writes by this many (virtual) seconds
  // after the last PREPARE_REPLY. Models the paper's premise that the
  // compute phase dwarfs the decision exchange; 0 = execute immediately.
  double execution_delay = 0;
  // Single-site transactions (every item local to the coordinator) skip
  // the message rounds entirely: lock, execute, install, decide — the
  // §2.1 observation that such transactions need no distributed atomic
  // update. Disable to force every transaction through full 2PC.
  bool enable_local_fast_path = true;
  // --- protocol leg selection ---
  ProtocolLeg leg = ProtocolLeg::kTwoPhase;
  // Paxos leg: total number of sites in the cluster. Every site is an
  // acceptor (2F+1 acceptors tolerate F failures; majority = N/2 + 1).
  // Cluster assemblies fill this in; it must be >= 1 for the Paxos leg.
  size_t cluster_sites = 0;
  // Paxos leg: how long an RM waits for the decision after voting before
  // nudging the next standby leader — the Paxos analogue of the in-doubt
  // window dial (bench_indoubt_window sweeps it three-way).
  double paxos_failover_timeout = 0.3;
};

struct EngineMetrics {
  uint64_t txns_submitted = 0;
  uint64_t txns_committed = 0;   // coordinator-side decisions
  uint64_t txns_aborted = 0;
  uint64_t txns_read_only = 0;
  uint64_t polytxns = 0;              // executions that read >=1 polyvalue
  uint64_t alternatives_executed = 0;
  uint64_t uncertain_outputs = 0;     // client outputs left uncertain
  uint64_t polyvalue_installs = 0;    // items made uncertain by timeouts
  uint64_t polyvalues_resolved = 0;   // items reduced back to certain
  uint64_t wait_timeouts = 0;         // in-doubt windows hit
  uint64_t blocked_holds = 0;         // blocking policy: lock-hold episodes
  uint64_t arbitrary_commits = 0;     // relaxed policy: unilateral commits
  uint64_t outcome_inquiries = 0;
  uint64_t outcome_notifies = 0;
  uint64_t local_fast_path = 0;       // single-site txns run without 2PC
  uint64_t lock_waits = 0;            // wait-die: prepares that queued
  uint64_t lock_wait_resumes = 0;     // parked prepares later granted

  // Paxos Commit leg (src/paxos/): zero on the 2PC legs.
  uint64_t paxos_votes = 0;             // RM Phase2a(ballot 0) broadcasts
  uint64_t paxos_accepts = 0;           // acceptor-side accepted values
  uint64_t paxos_failovers = 0;         // standby-leader nudges sent
  uint64_t paxos_recovery_ballots = 0;  // Phase1a rounds started

  // Phase-duration instrumentation (§2.2: the vulnerable window should
  // be short relative to the computation): per-participation seconds
  // spent in the compute phase (PREPARE -> WRITE_REQ) and in the wait
  // phase (READY -> outcome learned / policy applied).
  double compute_phase_seconds = 0;
  uint64_t compute_phase_count = 0;
  double wait_phase_seconds = 0;
  uint64_t wait_phase_count = 0;
  // Longest single wait phase: the worst in-doubt exposure any one
  // participant suffered. Under blocking 2PC this grows with the
  // outage; under Paxos Commit it is bounded by the failover timeout.
  double wait_phase_max = 0;

  // Adds `other` field-by-field (cluster-wide aggregation).
  void Accumulate(const EngineMetrics& other);

  // Writes every field into `registry` under `prefix` — totals as
  // counters, phase durations as gauges (machine-readable export).
  void ExportTo(MetricsRegistry* registry, const std::string& prefix) const;
};

// The commit-protocol seam: everything a Site needs from whichever
// protocol leg it runs. TxnEngine (2PC + in-doubt policies) and
// PaxosEngine (src/paxos/) both implement it; Site routes Submit and
// incoming packets through a CommitProtocol*, so the cluster
// assemblies, workload generators and benches are leg-agnostic.
class CommitProtocol {
 public:
  virtual ~CommitProtocol() = default;
  // Runs `spec` with this site as coordinator; the callback fires
  // exactly once (possibly much later, after failures heal).
  virtual TxnId Submit(TxnSpec spec, TxnCallback callback) = 0;
  // Transport entry point.
  virtual void OnMessage(SiteId from, const Message& msg) = 0;
  // Failure simulation hooks: drop volatile state / restart.
  virtual void Crash() = 0;
  virtual void Recover() = 0;
  virtual EngineMetrics metrics() const = 0;
  // Durable local decision for `txn`, if this site fixed or learned one.
  virtual std::optional<bool> DecidedOutcome(TxnId txn) const = 0;
};

class TxnEngine : public CommitProtocol {
 public:
  using SendFn = std::function<void(SiteId to, const Message& msg)>;

  TxnEngine(SiteId self, ItemStore* items, OutcomeTable* outcomes,
            Scheduler* scheduler, SendFn send, EngineConfig config);
  ~TxnEngine() override;

  // Optional durability: every install / outcome / tracking mutation is
  // logged. The engine does not own the WAL.
  void AttachWal(Wal* wal) { wal_ = wal; }

  // Optional observability: every lifecycle transition is emitted to
  // `sink` (src/obs/trace.h). Attach before traffic; the engine does not
  // own the sink. With no sink attached every emission point is a single
  // null-pointer check (verified free by bench_throughput).
  void AttachTrace(TraceSink* sink) {
    MutexLock lock(&mu_);
    trace_ = sink;
  }

  SiteId self() const { return self_; }
  const EngineConfig& config() const { return config_; }

  // --- transaction ids ---
  // Ids encode their coordinator: id = (site << kSiteShift) | seq, so any
  // holder of a polyvalue can route an outcome inquiry.
  TxnId AllocateTxnId();
  static SiteId CoordinatorOf(TxnId txn);

  // Ensures future AllocateTxnId calls return ids above `max_seq` (used
  // when recovery replays ids this site already handed out).
  void RaiseSeqFloor(uint64_t max_seq);

  // --- client API (coordinator role) ---
  // Runs `spec` with this site as coordinator. The callback fires exactly
  // once, possibly synchronously (local-only read) or much later (after
  // failures heal). Pass a pre-allocated id via `txn` to correlate.
  TxnId Submit(TxnSpec spec, TxnCallback callback) override;
  TxnId Submit(TxnSpec spec, TxnCallback callback, TxnId txn);

  // --- transport entry point ---
  void OnMessage(SiteId from, const Message& msg) override;

  // --- failure simulation hooks ---
  // Drops all volatile state: in-flight coordinations (their clients
  // never hear back until recovery-time inquiry), participations, locks,
  // timers. Durable state — items, outcome table, decided outcomes,
  // prepared writes — survives (it is WAL-backed when a WAL is attached).
  void Crash() override;
  // Post-crash restart: re-applies the in-doubt policy to prepared-but-
  // undecided participations and restarts outcome inquiries.
  void Recover() override;

  // Starts the periodic inquiry loop (idempotent). Called by Recover()
  // and by the first polyvalue install; exposed for tests.
  void EnsureInquiryLoop();

  // §3.4 support: invokes `callback(committed)` once the outcome of
  // `txn` is known at this site — immediately if already known. This is
  // the "withhold uncertain outputs until the uncertainty is resolved"
  // option: callers park an uncertain client answer on the transactions
  // it depends on. Subscriptions are volatile (lost on Crash).
  using OutcomeCallback = std::function<void(bool committed)>;
  void SubscribeOutcome(TxnId txn, OutcomeCallback callback);

  EngineMetrics metrics() const override;

  // Durable coordinator decision, if any (tests / audits).
  std::optional<bool> DecidedOutcome(TxnId txn) const override;

  // Rebuilds durable engine state from replayed WAL records. Call before
  // any traffic, after store/outcome-table recovery.
  void RestoreDurableState(const std::vector<WalRecord>& records);

  // Snapshot integration: exports / imports the engine's durable state
  // (prepared votes + coordinator decisions). Import must precede any
  // traffic; WAL-tail RestoreDurableState may follow it.
  void ExportDurableState(SiteSnapshot* snapshot) const;
  void ImportDurableState(const SiteSnapshot& snapshot);

 private:
  // ---- coordinator state ----
  enum class CoordPhase { kCollecting, kWaitingReady };
  struct Coordination {
    TxnSpec spec;
    CoordPhase phase = CoordPhase::kCollecting;
    std::vector<SiteId> participants;
    std::set<SiteId> awaiting;
    std::map<ItemKey, PolyValue> collected;  // reads ∪ previous values
    TxnCallback callback;
    Scheduler::TimerId timer = 0;
    PolyValue output;
    bool was_polytxn = false;
  };

  // ---- participant state (Figure 1; idle = absent) ----
  enum class PartState { kCompute, kWait };
  struct Participation {
    SiteId coordinator;
    PartState state = PartState::kCompute;
    std::vector<ItemKey> locked_keys;
    std::map<ItemKey, PolyValue> pending_writes;
    Scheduler::TimerId wait_timer = 0;
    bool blocked = false;  // kBlock policy: held past the timeout
    double compute_entered_at = 0;  // phase instrumentation (§2.2)
    double wait_entered_at = 0;
    // Wait-die parking: keys still queued for, the original PREPARE to
    // resume with, and whether the PREPARE_REPLY has been sent yet.
    std::set<ItemKey> awaited_keys;
    Message parked_prepare;
    bool prepare_replied = false;
  };

  // Deferred side effects, flushed outside the lock.
  struct Outbox {
    std::vector<std::pair<SiteId, Message>> sends;
    std::vector<std::function<void()>> thunks;
  };

  // -- coordinator internals (engine_coordinator.cc) --
  // Every private handler below runs with mu_ held: public entry points
  // (OnMessage, Submit, timer callbacks) take the lock once, dispatch,
  // and defer all side effects into the Outbox, flushed after unlock.
  // The locked body of Submit. Every path — crashed coordinator, local
  // fast path, empty participant set, the full prepare fan-out —
  // returns with its side effects parked in `out`, so Submit flushes
  // exactly once, after mu_ is released. (An earlier version flushed
  // inside the lock on the early-return paths, running client
  // callbacks and the group-commit fsync under mu_; lockdep caught it
  // as a kEngine -> kClientWait rank inversion.)
  void SubmitUnderLock(TxnSpec spec, TxnCallback callback, TxnId txn,
                       Outbox* out) EXCLUDES(mu_);
  // Runs a transaction whose every item lives at this site without any
  // message rounds. Returns false when the fast path does not apply.
  bool TryLocalFastPath(TxnId txn, const TxnSpec& spec,
                        const TxnCallback& callback, Outbox* out)
      REQUIRES(mu_);
  void HandlePrepareReply(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void HandleReady(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void ExecuteAndShip(TxnId txn, Coordination* coord, Outbox* out)
      REQUIRES(mu_);
  void Decide(TxnId txn, bool commit, const std::string& reason,
              Outbox* out) REQUIRES(mu_);
  void HandleOutcomeRequest(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void CoordinatorTimeout(TxnId txn, CoordPhase expected_phase);

  // -- participant internals (engine_participant.cc) --
  void HandlePrepare(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  // Tail of the prepare path once every lock is held: read values,
  // record §3.3 shipping obligations, send PREPARE_REPLY.
  void FinishPrepareReads(TxnId txn, Participation* part, Outbox* out)
      REQUIRES(mu_);
  // Releases txn's locks, waking and resuming parked prepares that the
  // freed items were granted to.
  void ReleaseLocks(TxnId txn, Outbox* out) REQUIRES(mu_);
  void HandleWriteReq(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void HandleComplete(const Message& msg, Outbox* out) REQUIRES(mu_);
  void HandleAbort(const Message& msg, Outbox* out) REQUIRES(mu_);
  void WaitTimeout(TxnId txn);
  void ApplyInDoubtPolicy(TxnId txn, Participation* part, Outbox* out)
      REQUIRES(mu_);
  void FinishParticipation(TxnId txn, Participation* part, bool commit,
                           Outbox* out) REQUIRES(mu_);

  // -- shared internals (engine_common.cc) --
  // Installs `value` for `key`, maintaining dependency tracking and WAL.
  void InstallValue(const ItemKey& key, const PolyValue& raw_value)
      REQUIRES(mu_);
  void HandleLearnedOutcome(TxnId txn, bool committed, Outbox* out)
      REQUIRES(mu_);
  void HandleOutcomeReply(const Message& msg, Outbox* out) REQUIRES(mu_);
  void HandleOutcomeNotify(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void InquiryTick();
  void MarkPreparedDurable(TxnId txn, SiteId coordinator,
                           const std::map<ItemKey, PolyValue>& writes)
      REQUIRES(mu_);
  void ClearPreparedDurable(TxnId txn) REQUIRES(mu_);
  void RecordDecisionDurable(TxnId txn, bool commit) REQUIRES(mu_);
  void Wal_(const WalRecord& record) REQUIRES(mu_);
  void FlushOutbox(Outbox* out) EXCLUDES(mu_);

  // Schedules `fn` after `delay`, guarded so the callback is a no-op once
  // this engine is destroyed (timers may outlive a restarted site).
  Scheduler::TimerId ScheduleGuarded(double delay, std::function<void()> fn);

  // Trace emission helpers. The null check comes first so an unattached
  // sink costs one predictable branch and nothing is constructed; call
  // sites that must *compute* event arguments guard on trace_ themselves.
  void Trace(TraceEventType type, TxnId txn, bool flag = false,
             uint64_t arg = 0) REQUIRES(mu_) {
    if (trace_ == nullptr) {
      return;
    }
    TraceEvent event;
    event.time = scheduler_->Now();
    event.type = type;
    event.site = self_;
    event.txn = txn;
    event.flag = flag;
    event.arg = arg;
    trace_->Emit(event);
  }
  void TraceKey(TraceEventType type, TxnId txn, const ItemKey& key,
                bool flag = false) REQUIRES(mu_) {
    if (trace_ == nullptr) {
      return;
    }
    TraceEvent event;
    event.time = scheduler_->Now();
    event.type = type;
    event.site = self_;
    event.txn = txn;
    event.key = key;
    event.flag = flag;
    trace_->Emit(event);
  }

  static constexpr int kSiteShift = kTxnSiteShift;

  const SiteId self_;
  ItemStore* const items_;
  OutcomeTable* const outcomes_;
  Scheduler* const scheduler_;
  const SendFn send_;
  const EngineConfig config_;
  Wal* wal_ = nullptr;
  TraceSink* trace_ GUARDED_BY(mu_) = nullptr;

  mutable Mutex mu_ POLYV_MUTEX_RANK(kEngine);
  // Txn-id sequence. Atomic so AllocateTxnId (called on every client
  // Submit) never touches mu_; writers that raise the floor after
  // recovery use a monotonic CAS.
  std::atomic<uint64_t> next_seq_{1};
  std::map<TxnId, Coordination> coordinations_ GUARDED_BY(mu_);
  std::map<TxnId, Participation> participations_ GUARDED_BY(mu_);

  // Durable-by-contract (survives Crash; mirrored to WAL when attached):
  // coordinator decisions...
  std::map<TxnId, bool> decided_ GUARDED_BY(mu_);
  // ...and participant prepared-but-undecided writes.
  struct Prepared {
    SiteId coordinator;
    std::map<ItemKey, PolyValue> writes;
  };
  std::map<TxnId, Prepared> prepared_ GUARDED_BY(mu_);

  std::map<TxnId, std::vector<OutcomeCallback>> outcome_subscribers_
      GUARDED_BY(mu_);

  bool inquiry_loop_running_ GUARDED_BY(mu_) = false;
  bool crashed_ GUARDED_BY(mu_) = false;
  EngineMetrics metrics_ GUARDED_BY(mu_);
  // Liveness token shared with scheduled callbacks; flipped false on
  // destruction so stale timers cannot touch a dead engine.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace polyvalue

#endif  // SRC_TXN_ENGINE_H_
