// Timer scheduling abstraction.
//
// The protocol state machines need timeouts (prepare deadline, the
// in-doubt wait window, outcome-inquiry retries). They program them
// against this interface so the deterministic simulator and the real
// threaded runtime drive identical engine code.
#ifndef SRC_TXN_SCHEDULER_H_
#define SRC_TXN_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <thread>

#include "src/common/thread_annotations.h"
#include "src/event/simulator.h"

namespace polyvalue {

class Scheduler {
 public:
  using TimerId = uint64_t;
  using Action = std::function<void()>;

  virtual ~Scheduler() = default;

  // Seconds since an arbitrary epoch.
  virtual double Now() const = 0;

  // Runs `action` after `delay_seconds`. Returns a cancellable id.
  virtual TimerId ScheduleAfter(double delay_seconds, Action action) = 0;

  // Cancels; returns false when the timer already fired or is unknown.
  virtual bool Cancel(TimerId id) = 0;
};

// Scheduler on the discrete-event simulator (deterministic).
class SimScheduler : public Scheduler {
 public:
  explicit SimScheduler(Simulator* sim) : sim_(sim) {}

  double Now() const override { return sim_->now(); }
  TimerId ScheduleAfter(double delay_seconds, Action action) override {
    return sim_->After(delay_seconds, std::move(action));
  }
  bool Cancel(TimerId id) override { return sim_->Cancel(id); }

 private:
  Simulator* sim_;
};

// Wall-clock scheduler with one worker thread.
class ThreadScheduler : public Scheduler {
 public:
  ThreadScheduler();
  ~ThreadScheduler() override;

  ThreadScheduler(const ThreadScheduler&) = delete;
  ThreadScheduler& operator=(const ThreadScheduler&) = delete;

  double Now() const override;
  TimerId ScheduleAfter(double delay_seconds, Action action) override;
  bool Cancel(TimerId id) override;

 private:
  void Loop();

  using Clock = std::chrono::steady_clock;

  mutable Mutex mu_ POLYV_MUTEX_RANK(kScheduler);
  CondVar cv_;
  bool stopping_ GUARDED_BY(mu_) = false;
  TimerId next_id_ GUARDED_BY(mu_) = 1;
  // Fire-time ordered multimap; value = (id, action).
  std::multimap<Clock::time_point, std::pair<TimerId, Action>> timers_
      GUARDED_BY(mu_);
  Clock::time_point epoch_;
  std::thread worker_;
};

}  // namespace polyvalue

#endif  // SRC_TXN_SCHEDULER_H_
