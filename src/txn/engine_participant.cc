// Participant role: Figure 1's idle/compute/wait state machine, with the
// three in-doubt policies at the wait-timeout edge.
#include "src/txn/engine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/strings.h"

namespace polyvalue {

void TxnEngine::HandlePrepare(SiteId from, const Message& msg, Outbox* out) {
  (void)from;
  const TxnId txn = msg.txn;
  if (participations_.count(txn) > 0 || prepared_.count(txn) > 0) {
    Trace(TraceEventType::kMsgIgnored, txn, false,
          static_cast<uint64_t>(MsgType::kPrepare));
    return;  // duplicate PREPARE
  }

  // idle -> compute: lock every item this site contributes, then read.
  Participation part;
  part.coordinator = msg.coordinator;
  part.state = PartState::kCompute;
  part.compute_entered_at = scheduler_->Now();
  part.parked_prepare = msg;

  std::vector<ItemKey> all_keys = msg.read_keys;
  all_keys.insert(all_keys.end(), msg.write_keys.begin(),
                  msg.write_keys.end());
  std::sort(all_keys.begin(), all_keys.end());
  all_keys.erase(std::unique(all_keys.begin(), all_keys.end()),
                 all_keys.end());

  for (const ItemKey& key : all_keys) {
    if (config_.lock_wait == LockWaitPolicy::kWaitDie) {
      switch (items_->LockOrQueue(key, txn)) {
        case ItemStore::LockAttempt::kGranted:
          part.locked_keys.push_back(key);
          break;
        case ItemStore::LockAttempt::kQueued:
          part.awaited_keys.insert(key);
          break;
        case ItemStore::LockAttempt::kRefused:
          items_->CancelWaits(txn);
          ReleaseLocks(txn, out);
          TraceKey(TraceEventType::kPrepareRefused, txn, key);
          out->sends.emplace_back(
              msg.coordinator,
              MakePrepareRefusal(txn, "wait-die: younger than holder of '" +
                                          key + "'"));
          return;
      }
    } else {
      const Status lock_status = items_->Lock(key, txn);
      if (!lock_status.ok()) {
        ReleaseLocks(txn, out);
        TraceKey(TraceEventType::kPrepareRefused, txn, key);
        out->sends.emplace_back(
            msg.coordinator,
            MakePrepareRefusal(txn, lock_status.message()));
        return;
      }
      part.locked_keys.push_back(key);
    }
  }

  // compute-phase watchdog: if the coordinator dies before shipping
  // writes (or our queued locks never arrive), discard. We have not
  // voted, so unilateral abort is safe (Fig. 1's compute -> idle edge).
  part.wait_timer = ScheduleGuarded(
      config_.prepare_timeout + config_.ready_timeout,
      [this, txn] {
        Outbox timeout_out;
        {
          MutexLock lock(&mu_);
          if (crashed_) {
            return;
          }
          auto it = participations_.find(txn);
          if (it == participations_.end() ||
              it->second.state != PartState::kCompute) {
            return;
          }
          items_->CancelWaits(txn);
          ReleaseLocks(txn, &timeout_out);
          participations_.erase(it);
          Trace(TraceEventType::kComputeDiscard, txn);
        }
        FlushOutbox(&timeout_out);
      });

  const bool parked = !part.awaited_keys.empty();
  auto [it, inserted] = participations_.emplace(txn, std::move(part));
  POLYV_CHECK(inserted);
  Trace(TraceEventType::kPrepareRecv, txn, parked);
  if (parked) {
    ++metrics_.lock_waits;
    return;  // resumed from ReleaseLocks when the grants arrive
  }
  FinishPrepareReads(txn, &it->second, out);
}

void TxnEngine::FinishPrepareReads(TxnId txn, Participation* part,
                                   Outbox* out) {
  const Message& msg = part->parked_prepare;
  std::vector<ItemKey> all_keys = msg.read_keys;
  all_keys.insert(all_keys.end(), msg.write_keys.begin(),
                  msg.write_keys.end());
  std::sort(all_keys.begin(), all_keys.end());
  all_keys.erase(std::unique(all_keys.begin(), all_keys.end()),
                 all_keys.end());

  std::map<ItemKey, PolyValue> values;
  for (const ItemKey& key : all_keys) {
    Result<PolyValue> value = items_->Read(key);
    if (!value.ok()) {
      const bool is_write_only =
          std::find(msg.read_keys.begin(), msg.read_keys.end(), key) ==
          msg.read_keys.end();
      if (is_write_only) {
        // Creating a new item: previous value is Null.
        values.emplace(key, PolyValue::Certain(Value::Null()));
        continue;
      }
      const SiteId coordinator = part->coordinator;
      if (part->wait_timer != 0) {
        scheduler_->Cancel(part->wait_timer);
      }
      participations_.erase(txn);  // invalidates part
      items_->CancelWaits(txn);
      ReleaseLocks(txn, out);
      TraceKey(TraceEventType::kPrepareRefused, txn, key);
      out->sends.emplace_back(
          coordinator, MakePrepareRefusal(txn, value.status().message()));
      return;
    }
    // Shipping a polyvalue to the coordinator obliges us to forward the
    // outcomes it depends on (§3.3).
    for (TxnId dep : value.value().Dependencies()) {
      if (part->coordinator != self_) {
        outcomes_->RecordDownstreamSite(dep, part->coordinator);
        Wal_(WalRecord::TrackSite(dep, part->coordinator));
      }
    }
    values.emplace(key, std::move(value).value());
  }
  part->prepare_replied = true;
  Trace(TraceEventType::kPrepareReplied, txn, /*flag=*/true);
  out->sends.emplace_back(part->coordinator,
                          MakePrepareReply(txn, std::move(values)));
}

void TxnEngine::ReleaseLocks(TxnId txn, Outbox* out) {
  const std::vector<ItemStore::Grant> grants = items_->UnlockAll(txn);
  for (const ItemStore::Grant& grant : grants) {
    auto it = participations_.find(grant.txn);
    if (it == participations_.end()) {
      // Granted to a transaction we no longer track (raced away): free
      // the lock again so it is not orphaned.
      ReleaseLocks(grant.txn, out);
      continue;
    }
    Participation& waiter = it->second;
    waiter.locked_keys.push_back(grant.key);
    waiter.awaited_keys.erase(grant.key);
    if (waiter.awaited_keys.empty() &&
        waiter.state == PartState::kCompute && !waiter.prepare_replied) {
      ++metrics_.lock_wait_resumes;
      FinishPrepareReads(grant.txn, &waiter, out);
    }
  }
}

void TxnEngine::HandleWriteReq(SiteId from, const Message& msg,
                               Outbox* out) {
  const TxnId txn = msg.txn;
  auto it = participations_.find(txn);
  if (it == participations_.end() ||
      it->second.state != PartState::kCompute ||
      !it->second.prepare_replied) {
    Trace(TraceEventType::kMsgIgnored, txn, false,
          static_cast<uint64_t>(MsgType::kWriteReq));
    return;  // gave up on this transaction (or never replied): no READY
  }
  Participation& part = it->second;
  if (part.wait_timer != 0) {
    scheduler_->Cancel(part.wait_timer);
  }
  part.pending_writes = msg.writes;
  part.state = PartState::kWait;
  part.wait_entered_at = scheduler_->Now();
  metrics_.compute_phase_seconds +=
      part.wait_entered_at - part.compute_entered_at;
  ++metrics_.compute_phase_count;

  // Vote READY. The vote is a promise: the writes must survive a crash,
  // so they go to the durable prepared set first (§3.1's wait phase).
  MarkPreparedDurable(txn, part.coordinator, part.pending_writes);
  Trace(TraceEventType::kReadySent, txn, false, part.pending_writes.size());
  out->sends.emplace_back(from, MakeReady(txn));

  // wait -> idle happens on COMPLETE, ABORT, or this timeout.
  part.wait_timer = ScheduleGuarded(
      config_.wait_timeout, [this, txn] { WaitTimeout(txn); });
}

void TxnEngine::HandleComplete(const Message& msg, Outbox* out) {
  auto it = participations_.find(msg.txn);
  if (it != participations_.end() &&
      it->second.state == PartState::kWait) {
    FinishParticipation(msg.txn, &it->second, /*commit=*/true, out);
    return;
  }
  // Late COMPLETE after the in-doubt policy already ran: treat it as
  // learning the outcome (reduces any polyvalues we installed).
  HandleLearnedOutcome(msg.txn, /*committed=*/true, out);
}

void TxnEngine::HandleAbort(const Message& msg, Outbox* out) {
  auto it = participations_.find(msg.txn);
  if (it != participations_.end()) {
    if (it->second.state == PartState::kCompute) {
      // compute -> idle: discard, nothing was promised.
      if (it->second.wait_timer != 0) {
        scheduler_->Cancel(it->second.wait_timer);
      }
      items_->CancelWaits(msg.txn);
      ReleaseLocks(msg.txn, out);
      participations_.erase(msg.txn);
      Trace(TraceEventType::kComputeDiscard, msg.txn);
      return;
    }
    FinishParticipation(msg.txn, &it->second, /*commit=*/false, out);
    return;
  }
  HandleLearnedOutcome(msg.txn, /*committed=*/false, out);
}

// Normal end of the wait phase: install (commit) or discard (abort),
// release locks, return to idle.
void TxnEngine::FinishParticipation(TxnId txn, Participation* part,
                                    bool commit, Outbox* out) {
  if (part->wait_timer != 0) {
    scheduler_->Cancel(part->wait_timer);
    part->wait_timer = 0;
  }
  if (part->state == PartState::kWait && part->wait_entered_at > 0) {
    const double waited = scheduler_->Now() - part->wait_entered_at;
    metrics_.wait_phase_seconds += waited;
    ++metrics_.wait_phase_count;
    metrics_.wait_phase_max = std::max(metrics_.wait_phase_max, waited);
    part->wait_entered_at = 0;
  }
  if (commit) {
    for (const auto& [key, value] : part->pending_writes) {
      InstallValue(key, value);
    }
  }
  ClearPreparedDurable(txn);
  ReleaseLocks(txn, out);
  // Erase before learning: HandleLearnedOutcome finishes wait-state
  // participations, so the map entry must be gone to avoid recursion.
  participations_.erase(txn);
  // Record the outcome and do the §3.3 work — this site may hold items
  // whose polyvalues depend on txn (shipped to it earlier), and may owe
  // downstream notifications.
  HandleLearnedOutcome(txn, commit, out);
}

void TxnEngine::WaitTimeout(TxnId txn) {
  Outbox out;
  {
    MutexLock lock(&mu_);
    if (crashed_) {
      return;
    }
    auto it = participations_.find(txn);
    if (it == participations_.end() ||
        it->second.state != PartState::kWait) {
      return;
    }
    ++metrics_.wait_timeouts;
    Trace(TraceEventType::kWaitTimeout, txn);
    ApplyInDoubtPolicy(txn, &it->second, &out);
  }
  FlushOutbox(&out);
}

// The heart of the reproduction: what a participant does when neither
// COMPLETE nor ABORT arrived promptly (§3.1's third way out of `wait`).
void TxnEngine::ApplyInDoubtPolicy(TxnId txn, Participation* part,
                                   Outbox* out) {
  switch (config_.policy) {
    case InDoubtPolicy::kPolyvalue: {
      // Install {⟨computed, T⟩, ⟨previous, ¬T⟩} for every written item,
      // release the locks, and return to idle. The outcome table already
      // tracks every dependency via InstallValue; the inquiry loop will
      // chase T's coordinator.
      if (part->wait_entered_at > 0) {
        // The vulnerable window ends here: locks release with the
        // installs (§2.2 instrumentation).
        metrics_.wait_phase_seconds +=
            scheduler_->Now() - part->wait_entered_at;
        ++metrics_.wait_phase_count;
        part->wait_entered_at = 0;
      }
      for (const auto& [key, computed] : part->pending_writes) {
        const Result<PolyValue> prev = items_->Read(key);
        const PolyValue previous =
            prev.ok() ? prev.value() : PolyValue::Certain(Value::Null());
        const PolyValue installed =
            PolyValue::InstallUncertain(txn, computed, previous);
        InstallValue(key, installed);
        ++metrics_.polyvalue_installs;
      }
      ClearPreparedDurable(txn);
      ReleaseLocks(txn, out);
      participations_.erase(txn);
      Trace(TraceEventType::kUncertainRelease, txn, false,
            part->pending_writes.size());
      out->thunks.push_back([this] { EnsureInquiryLoop(); });
      break;
    }
    case InDoubtPolicy::kBlock: {
      // Classic 2PC: hold every lock until the outcome is known. The
      // inquiry loop polls the coordinator; FinishParticipation runs from
      // HandleLearnedOutcome when the answer arrives.
      ++metrics_.blocked_holds;
      Trace(TraceEventType::kBlockedHold, txn);
      part->blocked = true;
      out->thunks.push_back([this] { EnsureInquiryLoop(); });
      break;
    }
    case InDoubtPolicy::kArbitrary: {
      // Relaxed consistency (§2.3): guess commit and move on. Fast, but
      // if the coordinator actually aborted this violates atomicity —
      // the availability bench audits exactly that.
      ++metrics_.arbitrary_commits;
      Trace(TraceEventType::kArbitraryCommit, txn);
      FinishParticipation(txn, part, /*commit=*/true, out);
      break;
    }
  }
}

}  // namespace polyvalue
