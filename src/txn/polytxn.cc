#include "src/txn/polytxn.h"

#include <set>
#include <string>
#include <vector>

#include "src/common/strings.h"

namespace polyvalue {

namespace {

// One alternative database state under construction.
struct Alternative {
  Condition condition = Condition::True();
  TxnReads reads;
};

}  // namespace

Result<PolyTxnResult> ExecutePolyTransaction(
    const std::map<ItemKey, PolyValue>& inputs,
    const std::map<ItemKey, PolyValue>& previous, const TxnLogic& logic,
    const PolyTxnOptions& options) {
  // Partition: start from the single alternative T_true and split on each
  // polyvalued input (§3.2: reading {⟨v_i, c_i⟩} splits T_c into {T_c∧ci}).
  PolyTxnResult result;
  std::vector<Alternative> alternatives(1);
  for (const auto& [key, poly] : inputs) {
    if (poly.is_certain()) {
      // Certain input: no partitioning, every alternative reads it as-is.
      for (Alternative& alt : alternatives) {
        alt.reads.Insert(key, poly.certain_value());
      }
      continue;
    }
    std::vector<Alternative> next;
    next.reserve(alternatives.size() * poly.pairs().size());
    for (const Alternative& alt : alternatives) {
      for (const PolyPair& pair : poly.pairs()) {
        Condition joint = Condition::And(alt.condition, pair.condition);
        if (joint.is_false()) {
          ++result.alternatives_pruned;
          continue;  // logically impossible combination: never execute
        }
        Alternative split = alt;
        split.condition = std::move(joint);
        split.reads.Insert(key, pair.value);
        next.push_back(std::move(split));
      }
    }
    alternatives = std::move(next);
    if (alternatives.size() > options.max_alternatives) {
      return FailedPreconditionError(
          StrCat("polytransaction fan-out exceeds cap of ",
                 options.max_alternatives));
    }
    if (alternatives.empty()) {
      return InternalError(
          "all alternatives pruned — input polyvalues are inconsistent");
    }
  }

  // Execute each alternative transaction — memoised per §3.2's second
  // optimisation: "recognize cases where the actual value of an item ...
  // does not affect the computation". Accesses are tracked; alternatives
  // whose values agree on every item any execution has consulted share
  // one execution. Sound because logic is pure and deterministic: equal
  // visible values at every read imply an identical run.
  struct Executed {
    Condition condition;
    TxnEffect effect;
  };
  std::vector<Executed> executed;
  executed.reserve(alternatives.size());
  // Each cache entry records the exact items one execution consulted and
  // the values it saw; an alternative agreeing on all of them would run
  // identically (logic is pure and deterministic), so the effect is
  // reused. Entries are few — one per *distinct* execution.
  struct CacheEntry {
    std::vector<std::pair<ItemKey, Value>> accessed_values;
    TxnEffect effect;
  };
  std::vector<CacheEntry> effect_cache;
  for (Alternative& alt : alternatives) {
    TxnEffect effect;
    const CacheEntry* hit = nullptr;
    for (const CacheEntry& entry : effect_cache) {
      bool matches = true;
      for (const auto& [item, seen] : entry.accessed_values) {
        if (!(alt.reads.RawAt(item) == seen)) {
          matches = false;
          break;
        }
      }
      if (matches) {
        hit = &entry;
        break;
      }
    }
    if (hit != nullptr) {
      effect = hit->effect;
      ++result.alternatives_memoized;
    } else {
      std::set<ItemKey> accessed;
      alt.reads.set_access_tracker(&accessed);
      effect = logic(alt.reads);
      alt.reads.set_access_tracker(nullptr);
      ++result.alternatives_executed;
      CacheEntry entry;
      entry.accessed_values.reserve(accessed.size());
      for (const ItemKey& item : accessed) {
        entry.accessed_values.emplace_back(item, alt.reads.RawAt(item));
      }
      entry.effect = effect;
      effect_cache.push_back(std::move(entry));
    }
    if (effect.abort) {
      // Conservative rule: an abort by any reachable alternative aborts
      // the transaction (the commit decision cannot be conditional).
      return AbortedError(effect.abort_reason.empty()
                              ? "logic aborted under alternative " +
                                    alt.condition.ToString()
                              : effect.abort_reason);
    }
    executed.push_back({std::move(alt.condition), std::move(effect)});
  }

  // Reassemble outputs. Collect the union of written keys first.
  std::map<ItemKey, bool> written_keys;
  for (const Executed& e : executed) {
    for (const auto& [key, value] : e.effect.writes) {
      written_keys[key] = true;
    }
  }

  for (const auto& [key, unused] : written_keys) {
    std::vector<PolyPair> pairs;
    for (const Executed& e : executed) {
      auto it = e.effect.writes.find(key);
      if (it != e.effect.writes.end()) {
        pairs.push_back({it->second, e.condition});
      } else {
        // §3.2: "or is the previous value of the item if transaction T_c
        // does not compute a new value for the item".
        auto prev_it = previous.find(key);
        const PolyValue& prev = prev_it != previous.end()
                                    ? prev_it->second
                                    : PolyValue::Certain(Value::Null());
        for (const PolyPair& p : prev.pairs()) {
          Condition joint = Condition::And(e.condition, p.condition);
          if (!joint.is_false()) {
            pairs.push_back({p.value, std::move(joint)});
          }
        }
      }
    }
    result.writes.emplace(key, PolyValue::Of(std::move(pairs)));
  }

  // Assemble the client-visible output.
  std::vector<PolyPair> output_pairs;
  output_pairs.reserve(executed.size());
  for (const Executed& e : executed) {
    output_pairs.push_back(
        {e.effect.output.value_or(Value::Null()), e.condition});
  }
  result.output = PolyValue::Of(std::move(output_pairs));
  return result;
}

}  // namespace polyvalue
