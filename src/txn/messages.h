// Protocol messages of the polyvalue commit protocol.
//
// The update protocol is Gray's two-phase commit (§3.1 adopts it
// directly) extended with outcome distribution for polyvalue reduction
// (§3.3):
//
//   coordinator -> participant : PREPARE      (keys to read/lock)
//   participant -> coordinator : PREPARE_REPLY (values or refusal)
//   coordinator -> participant : WRITE_REQ    (computed new values)
//   participant -> coordinator : READY        ("ready" of §3.1)
//   coordinator -> participant : COMPLETE / ABORT
//   any site    -> any site    : OUTCOME_REQUEST / OUTCOME_REPLY
//                                (recovery-time inquiry)
//   any site    -> any site    : OUTCOME_NOTIFY (decentralised §3.3 push)
//
// The Paxos Commit leg (Gray & Lamport, "Consensus on Transaction
// Commit") reuses PREPARE / PREPARE_REPLY / WRITE_REQ for its compute
// phase and replaces the READY/COMPLETE decision round with one Paxos
// instance per participant RM:
//
//   RM          -> acceptors   : PAXOS_PHASE2A (ballot 0, its own vote)
//   acceptor    -> leader      : PAXOS_PHASE2B (accepted vote)
//   new leader  -> acceptors   : PAXOS_PHASE1A (higher ballot)
//   acceptor    -> new leader  : PAXOS_PHASE1B (promise + accepted state)
//   any decider -> all sites   : PAXOS_DECISION (global outcome)
//   RM          -> standby     : PAXOS_NUDGE (leader appears dead)
//
// All messages serialise through the wire codecs; the transports carry
// opaque bytes.
#ifndef SRC_TXN_MESSAGES_H_
#define SRC_TXN_MESSAGES_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/poly/polyvalue.h"

namespace polyvalue {

enum class MsgType : uint8_t {
  kPrepare = 1,
  kPrepareReply = 2,
  kWriteReq = 3,
  kReady = 4,
  kComplete = 5,
  kAbort = 6,
  kOutcomeRequest = 7,
  kOutcomeReply = 8,
  kOutcomeNotify = 9,
  kPaxosPhase1a = 10,
  kPaxosPhase1b = 11,
  kPaxosPhase2a = 12,
  kPaxosPhase2b = 13,
  kPaxosDecision = 14,
  kPaxosNudge = 15,
};

const char* MsgTypeName(MsgType type);

// Wire protocol version; encoded as the first byte of every message.
// Decoders reject other versions, so incompatible engine builds sharing a
// network fail loudly instead of misinterpreting frames.
inline constexpr uint8_t kProtocolVersion = 1;

struct Message {
  MsgType type;
  TxnId txn;

  // kPrepare
  std::vector<ItemKey> read_keys;
  std::vector<ItemKey> write_keys;
  SiteId coordinator;  // who to report READY to

  // kPrepareReply
  bool ok = false;
  std::string error;
  std::map<ItemKey, PolyValue> values;

  // kWriteReq
  std::map<ItemKey, PolyValue> writes;

  // kOutcomeReply / kOutcomeNotify
  bool known = false;
  bool committed = false;

  // Paxos Commit leg. One consensus instance per participant RM; the
  // instance is identified by (txn, rm). `ok` doubles as the instance
  // value (true = Prepared, false = Aborted) in kPaxosPhase2a/2b, and
  // `committed` carries the global outcome in kPaxosDecision.
  uint64_t ballot = 0;        // kPaxosPhase1a/1b/2a/2b
  SiteId rm;                  // instance owner: kPaxosPhase2a/2b
  std::vector<SiteId> group;  // participant RM set: kPrepare (paxos leg),
                              // kPaxosPhase1b, kPaxosPhase2a, kPaxosNudge
  struct PaxosInstance {
    SiteId rm;
    uint64_t ballot = 0;
    bool prepared = false;
  };
  std::vector<PaxosInstance> instances;  // kPaxosPhase1b accepted state

  std::string Encode() const;
  static Result<Message> Decode(const std::string& bytes);
};

// Constructors.
Message MakePrepare(TxnId txn, SiteId coordinator,
                    std::vector<ItemKey> read_keys,
                    std::vector<ItemKey> write_keys);
Message MakePrepareReply(TxnId txn, std::map<ItemKey, PolyValue> values);
Message MakePrepareRefusal(TxnId txn, std::string error);
Message MakeWriteReq(TxnId txn, std::map<ItemKey, PolyValue> writes);
Message MakeReady(TxnId txn);
Message MakeComplete(TxnId txn);
Message MakeAbort(TxnId txn);
Message MakeOutcomeRequest(TxnId txn);
Message MakeOutcomeReply(TxnId txn, bool known, bool committed);
Message MakeOutcomeNotify(TxnId txn, bool committed);
Message MakePaxosPhase1a(TxnId txn, uint64_t ballot);
Message MakePaxosPhase1b(TxnId txn, uint64_t ballot,
                         std::vector<Message::PaxosInstance> instances,
                         std::vector<SiteId> group);
Message MakePaxosPhase2a(TxnId txn, uint64_t ballot, SiteId rm, bool prepared,
                         std::vector<SiteId> group);
Message MakePaxosPhase2b(TxnId txn, uint64_t ballot, SiteId rm, bool prepared);
Message MakePaxosDecision(TxnId txn, bool committed);
Message MakePaxosNudge(TxnId txn, std::vector<SiteId> group);

}  // namespace polyvalue

#endif  // SRC_TXN_MESSAGES_H_
