// The "simple value" of the paper: the payload stored in a database item
// when its state is certain, and the `v` half of each polyvalue pair.
//
// Values are a small tagged union (null / bool / int / real / string)
// with checked arithmetic returning Result<Value>: a polytransaction's
// alternative that divides by zero must fail cleanly for that branch, not
// crash the site.
#ifndef SRC_VALUE_VALUE_H_
#define SRC_VALUE_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "src/common/status.h"

namespace polyvalue {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kReal = 3,
  kString = 4,
};

const char* ValueTypeName(ValueType type);

class Value {
 public:
  // Null value.
  Value() : payload_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Payload(b)); }
  static Value Int(int64_t i) { return Value(Payload(i)); }
  static Value Real(double d) { return Value(Payload(d)); }
  static Value Str(std::string s) { return Value(Payload(std::move(s))); }

  ValueType type() const {
    return static_cast<ValueType>(payload_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_real() const { return type() == ValueType::kReal; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_real(); }

  // Typed accessors; aborting on wrong type is a programming error, so
  // callers check type() (or use the As* helpers) first.
  bool bool_value() const { return std::get<bool>(payload_); }
  int64_t int_value() const { return std::get<int64_t>(payload_); }
  double real_value() const { return std::get<double>(payload_); }
  const std::string& string_value() const {
    return std::get<std::string>(payload_);
  }

  // Numeric coercion: ints widen to double.
  Result<double> AsReal() const;
  Result<int64_t> AsInt() const;
  Result<bool> AsBool() const;

  // Exact structural equality (no numeric cross-type coercion: Int(1) !=
  // Real(1.0); polyvalue pair-merging relies on this being exact).
  bool operator==(const Value& other) const { return payload_ == other.payload_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Total order for canonicalisation (by type, then payload).
  bool operator<(const Value& other) const;

  std::string ToString() const;
  size_t Hash() const;

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

// Checked arithmetic / comparison on values.
//
// Numeric ops accept int+int (exact, overflow-checked), or any numeric mix
// (computed in double). String '+' concatenates. Anything else is an
// InvalidArgument error.
Result<Value> Add(const Value& a, const Value& b);
Result<Value> Sub(const Value& a, const Value& b);
Result<Value> Mul(const Value& a, const Value& b);
Result<Value> Div(const Value& a, const Value& b);
Result<Value> Neg(const Value& a);
Result<Value> Min(const Value& a, const Value& b);
Result<Value> Max(const Value& a, const Value& b);

// Comparisons: numeric mixes compare as doubles; strings lexicographically;
// bools as false<true. Mixed non-numeric types are errors.
Result<bool> Less(const Value& a, const Value& b);
Result<bool> LessEq(const Value& a, const Value& b);
Result<bool> Greater(const Value& a, const Value& b);
Result<bool> GreaterEq(const Value& a, const Value& b);

}  // namespace polyvalue

namespace std {
template <>
struct hash<polyvalue::Value> {
  size_t operator()(const polyvalue::Value& v) const noexcept {
    return v.Hash();
  }
};
}  // namespace std

#endif  // SRC_VALUE_VALUE_H_
