#include "src/value/value.h"

#include <cmath>
#include <functional>

#include "src/common/strings.h"

namespace polyvalue {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kReal:
      return "real";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

Result<double> Value::AsReal() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(int_value());
    case ValueType::kReal:
      return real_value();
    default:
      return InvalidArgumentError(
          StrCat("cannot read ", ValueTypeName(type()), " as real"));
  }
}

Result<int64_t> Value::AsInt() const {
  switch (type()) {
    case ValueType::kInt:
      return int_value();
    case ValueType::kReal: {
      const double d = real_value();
      if (std::nearbyint(d) != d) {
        return InvalidArgumentError("real has a fractional part");
      }
      return static_cast<int64_t>(d);
    }
    default:
      return InvalidArgumentError(
          StrCat("cannot read ", ValueTypeName(type()), " as int"));
  }
}

Result<bool> Value::AsBool() const {
  if (is_bool()) {
    return bool_value();
  }
  return InvalidArgumentError(
      StrCat("cannot read ", ValueTypeName(type()), " as bool"));
}

bool Value::operator<(const Value& other) const {
  if (type() != other.type()) {
    return type() < other.type();
  }
  return payload_ < other.payload_;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(int_value());
    case ValueType::kReal:
      return FormatDouble(real_value());
    case ValueType::kString:
      return "\"" + string_value() + "\"";
  }
  return "?";
}

size_t Value::Hash() const {
  const size_t tag = static_cast<size_t>(type());
  size_t h = 0;
  switch (type()) {
    case ValueType::kNull:
      h = 0;
      break;
    case ValueType::kBool:
      h = std::hash<bool>()(bool_value());
      break;
    case ValueType::kInt:
      h = std::hash<int64_t>()(int_value());
      break;
    case ValueType::kReal:
      h = std::hash<double>()(real_value());
      break;
    case ValueType::kString:
      h = std::hash<std::string>()(string_value());
      break;
  }
  return h * 31 + tag;
}

namespace {

bool AddOverflows(int64_t a, int64_t b, int64_t* out) {
  return __builtin_add_overflow(a, b, out);
}
bool SubOverflows(int64_t a, int64_t b, int64_t* out) {
  return __builtin_sub_overflow(a, b, out);
}
bool MulOverflows(int64_t a, int64_t b, int64_t* out) {
  return __builtin_mul_overflow(a, b, out);
}

Status TypeError(const char* op, const Value& a, const Value& b) {
  return InvalidArgumentError(StrCat("cannot ", op, " ",
                                     ValueTypeName(a.type()), " and ",
                                     ValueTypeName(b.type())));
}

}  // namespace

Result<Value> Add(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    int64_t out;
    if (AddOverflows(a.int_value(), b.int_value(), &out)) {
      return InvalidArgumentError("integer overflow in add");
    }
    return Value::Int(out);
  }
  if (a.is_numeric() && b.is_numeric()) {
    return Value::Real(a.AsReal().value() + b.AsReal().value());
  }
  if (a.is_string() && b.is_string()) {
    return Value::Str(a.string_value() + b.string_value());
  }
  return TypeError("add", a, b);
}

Result<Value> Sub(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    int64_t out;
    if (SubOverflows(a.int_value(), b.int_value(), &out)) {
      return InvalidArgumentError("integer overflow in sub");
    }
    return Value::Int(out);
  }
  if (a.is_numeric() && b.is_numeric()) {
    return Value::Real(a.AsReal().value() - b.AsReal().value());
  }
  return TypeError("subtract", a, b);
}

Result<Value> Mul(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    int64_t out;
    if (MulOverflows(a.int_value(), b.int_value(), &out)) {
      return InvalidArgumentError("integer overflow in mul");
    }
    return Value::Int(out);
  }
  if (a.is_numeric() && b.is_numeric()) {
    return Value::Real(a.AsReal().value() * b.AsReal().value());
  }
  return TypeError("multiply", a, b);
}

Result<Value> Div(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    if (b.int_value() == 0) {
      return InvalidArgumentError("integer division by zero");
    }
    if (a.int_value() == INT64_MIN && b.int_value() == -1) {
      return InvalidArgumentError("integer overflow in div");
    }
    return Value::Int(a.int_value() / b.int_value());
  }
  if (a.is_numeric() && b.is_numeric()) {
    const double denominator = b.AsReal().value();
    if (denominator == 0.0) {
      return InvalidArgumentError("division by zero");
    }
    return Value::Real(a.AsReal().value() / denominator);
  }
  return TypeError("divide", a, b);
}

Result<Value> Neg(const Value& a) {
  if (a.is_int()) {
    if (a.int_value() == INT64_MIN) {
      return InvalidArgumentError("integer overflow in neg");
    }
    return Value::Int(-a.int_value());
  }
  if (a.is_real()) {
    return Value::Real(-a.real_value());
  }
  return InvalidArgumentError(
      StrCat("cannot negate ", ValueTypeName(a.type())));
}

Result<Value> Min(const Value& a, const Value& b) {
  POLYV_ASSIGN_OR_RETURN(bool a_less, Less(a, b));
  return a_less ? a : b;
}

Result<Value> Max(const Value& a, const Value& b) {
  POLYV_ASSIGN_OR_RETURN(bool a_less, Less(a, b));
  return a_less ? b : a;
}

Result<bool> Less(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    return a.AsReal().value() < b.AsReal().value();
  }
  if (a.is_string() && b.is_string()) {
    return a.string_value() < b.string_value();
  }
  if (a.is_bool() && b.is_bool()) {
    return !a.bool_value() && b.bool_value();
  }
  return TypeError("compare", a, b);
}

Result<bool> LessEq(const Value& a, const Value& b) {
  POLYV_ASSIGN_OR_RETURN(bool gt, Less(b, a));
  return !gt;
}

Result<bool> Greater(const Value& a, const Value& b) { return Less(b, a); }

Result<bool> GreaterEq(const Value& a, const Value& b) {
  POLYV_ASSIGN_OR_RETURN(bool lt, Less(a, b));
  return !lt;
}

}  // namespace polyvalue
