#include "src/replica/topology.h"

#include "src/common/check.h"
#include "src/common/strings.h"

namespace polyvalue {

RegionTopology::RegionTopology(std::vector<RegionSpec> regions)
    : regions_(std::move(regions)) {
  POLYV_CHECK(!regions_.empty());
  for (size_t r = 0; r < regions_.size(); ++r) {
    POLYV_CHECK(!regions_[r].sites.empty());
    for (SiteId site : regions_[r].sites) {
      const auto [it, inserted] = region_of_.emplace(site.value(), r);
      (void)it;
      POLYV_CHECK(inserted);  // a site belongs to exactly one region
    }
  }
}

RegionTopology RegionTopology::SymmetricGrid(size_t regions,
                                             size_t sites_per_region) {
  POLYV_CHECK_GT(regions, 0u);
  POLYV_CHECK_GT(sites_per_region, 0u);
  std::vector<RegionSpec> specs;
  specs.reserve(regions);
  uint64_t next_site = 1;
  for (size_t r = 0; r < regions; ++r) {
    RegionSpec spec;
    spec.name = StrCat("r", r);
    for (size_t s = 0; s < sites_per_region; ++s) {
      spec.sites.push_back(SiteId(next_site++));
    }
    specs.push_back(std::move(spec));
  }
  return RegionTopology(std::move(specs));
}

const RegionSpec& RegionTopology::region(size_t index) const {
  POLYV_CHECK_LT(index, regions_.size());
  return regions_[index];
}

bool RegionTopology::Contains(SiteId site) const {
  return region_of_.count(site.value()) > 0;
}

size_t RegionTopology::RegionOf(SiteId site) const {
  auto it = region_of_.find(site.value());
  POLYV_CHECK(it != region_of_.end());
  return it->second;
}

const std::string& RegionTopology::RegionNameOf(SiteId site) const {
  return regions_[RegionOf(site)].name;
}

std::vector<SiteId> RegionTopology::AllSites() const {
  std::vector<SiteId> sites;
  sites.reserve(region_of_.size());
  for (const RegionSpec& region : regions_) {
    sites.insert(sites.end(), region.sites.begin(), region.sites.end());
  }
  return sites;
}

}  // namespace polyvalue
