#include "src/replica/wan.h"

#include "src/common/check.h"

namespace polyvalue {

void InstallWanProfile(const RegionTopology& topology,
                       const WanProfile& profile, FaultPlan* faults) {
  POLYV_CHECK(faults != nullptr);
  // Per-pair overrides win over the defaults; build a directed lookup.
  auto pair_delay = [&profile](size_t from, size_t to, double* lo,
                               double* hi) {
    for (const WanProfile::PairDelay& pair : profile.pairs) {
      if (pair.from_region == from && pair.to_region == to) {
        *lo = pair.min_seconds;
        *hi = pair.max_seconds;
        return;
      }
    }
  };
  const std::vector<SiteId> sites = topology.AllSites();
  for (SiteId from : sites) {
    for (SiteId to : sites) {
      if (from == to) {
        continue;
      }
      const size_t rf = topology.RegionOf(from);
      const size_t rt = topology.RegionOf(to);
      double lo = rf == rt ? profile.intra_min : profile.inter_min;
      double hi = rf == rt ? profile.intra_max : profile.inter_max;
      if (rf != rt) {
        pair_delay(rf, rt, &lo, &hi);
      }
      faults->SetLinkDelayRange(from, to, lo, hi);
    }
  }
}

void ScheduleRegionLoss(SimCluster* cluster,
                        const RegionTopology& topology, size_t region,
                        double at) {
  const RegionSpec& spec = topology.region(region);
  cluster->sim().At(at, [cluster, sites = spec.sites] {
    for (SiteId site : sites) {
      if (!cluster->site(site.value() - 1).crashed()) {
        cluster->CrashSite(site.value() - 1);
      }
    }
  });
}

void ScheduleRollingRecovery(SimCluster* cluster,
                             const RegionTopology& topology, size_t region,
                             double at, double stagger) {
  POLYV_CHECK_GE(stagger, 0.0);
  const RegionSpec& spec = topology.region(region);
  for (size_t i = 0; i < spec.sites.size(); ++i) {
    const SiteId site = spec.sites[i];
    cluster->sim().At(at + stagger * static_cast<double>(i),
                      [cluster, site] {
                        if (cluster->site(site.value() - 1).crashed()) {
                          cluster->RecoverSite(site.value() - 1);
                        }
                      });
  }
}

void ScheduleOneWayPartition(SimCluster* cluster,
                             const RegionTopology& topology,
                             size_t from_region, size_t to_region,
                             double at, double until) {
  POLYV_CHECK_LT(at, until);
  const std::vector<SiteId> from_sites = topology.region(from_region).sites;
  const std::vector<SiteId> to_sites = topology.region(to_region).sites;
  cluster->sim().At(at, [cluster, from_sites, to_sites] {
    cluster->faults().PartitionOneWay(from_sites, to_sites);
  });
  cluster->sim().At(until, [cluster, from_sites, to_sites] {
    for (SiteId from : from_sites) {
      for (SiteId to : to_sites) {
        cluster->faults().SetOneWayDown(from, to, false);
      }
    }
  });
}

}  // namespace polyvalue
