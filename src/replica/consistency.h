// Replica-consistency auditing and repair.
//
// Three tools over one ReplicaSet:
//   CheckReplicaSet    — classify every copy (ok / missing / uncertain /
//                        divergent) against the live majority value.
//   RepairReplicaSet   — write the majority value back over divergent or
//                        missing copies (direct store load, the offline
//                        repair path), announcing each rewrite.
//   EmitReplicaDigests — the A12 sweep: one replica_set_info opener plus
//                        one replica_digest per copy; TraceAuditor
//                        checks count and digest agreement.
//
// Digests are 64-bit FNV-1a over Value::ToString and never 0 — a 0 in a
// sweep means "this copy has no certain value" (missing, uncertain, or
// its site is down). Digest equality approximates value equality;
// collisions are accepted (the same approximation the auditor states).
#ifndef SRC_REPLICA_CONSISTENCY_H_
#define SRC_REPLICA_CONSISTENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/system/cluster.h"
#include "src/system/replication.h"
#include "src/value/value.h"

namespace polyvalue {

// Nonzero digest of a simple value.
uint64_t DigestValue(const Value& value);

struct ReplicaCheckReport {
  size_t copies_checked = 0;  // live copies examined
  size_t skipped_down = 0;    // copies on crashed sites (not examined)
  size_t missing = 0;         // live site has no copy of the item
  size_t uncertain = 0;       // copy still holds a polyvalue
  size_t divergent = 0;       // certain copy != the majority value
  std::vector<std::string> problems;  // one line per defect

  // True when every live copy exists, is certain, and agrees.
  bool consistent() const {
    return missing == 0 && uncertain == 0 && divergent == 0;
  }
};

ReplicaCheckReport CheckReplicaSet(SimCluster* cluster,
                                   const ReplicaSet& replicas);

// Rewrites divergent and missing copies with the majority certain value
// among live copies (ties break to the first-listed copy's value).
// Returns the number of copies rewritten; 0 when already consistent or
// when no live certain copy exists to repair from. Uncertain copies are
// never overwritten — outcome propagation, not repair, resolves them.
// Each rewrite emits replica_repair (and counts as announced provenance
// for A13) when `trace` is non-null.
size_t RepairReplicaSet(SimCluster* cluster, const ReplicaSet& replicas,
                        TraceSink* trace = nullptr);

// Emits the A12 consistency sweep for one replica set: replica_set_info
// with arg = copy count, then one replica_digest per copy (arg = the
// copy's digest, or 0 when the copy is missing, uncertain, or down).
// Call at quiescence — the auditor treats any 0 or disagreement as a
// convergence violation.
void EmitReplicaDigests(SimCluster* cluster, const ReplicaSet& replicas,
                        TraceSink* trace);

}  // namespace polyvalue

#endif  // SRC_REPLICA_CONSISTENCY_H_
