#include "src/replica/catalog.h"

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/replica/consistency.h"

namespace polyvalue {

ReplicaCatalog::ReplicaCatalog(const ReplicaPlacement& placement,
                               std::vector<std::string> logical_names) {
  sets_.reserve(logical_names.size());
  for (std::string& name : logical_names) {
    const auto [it, inserted] = by_name_.emplace(name, sets_.size());
    (void)it;
    POLYV_CHECK(inserted);  // names must be distinct
    sets_.push_back(placement.MakeReplicaSet(name));
  }
}

ReplicaCatalog ReplicaCatalog::Uniform(const ReplicaPlacement& placement,
                                       const std::string& prefix,
                                       uint64_t count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    names.push_back(StrCat(prefix, i));
  }
  return ReplicaCatalog(placement, std::move(names));
}

const ReplicaSet& ReplicaCatalog::at(size_t index) const {
  POLYV_CHECK_LT(index, sets_.size());
  return sets_[index];
}

const ReplicaSet& ReplicaCatalog::Find(
    const std::string& logical_name) const {
  auto it = by_name_.find(logical_name);
  POLYV_CHECK(it != by_name_.end());
  return sets_[it->second];
}

void ReplicaCatalog::LoadAll(SimCluster* cluster, const Value& initial,
                             TraceSink* trace) const {
  for (const ReplicaSet& set : sets_) {
    LoadReplicated(cluster, set, initial);
    if (trace != nullptr) {
      TraceEvent event;
      event.time = cluster->sim().now();
      event.type = TraceEventType::kReplicaWrite;
      event.site = set.sites().front();
      event.key = set.logical_name();
      event.arg = DigestValue(initial);
      trace->Emit(event);
    }
  }
}

}  // namespace polyvalue
