// ReplicaCatalog: the logical-key -> replica-set mapping consumers use
// instead of hand-listing sites.
//
// A catalog materializes one ReplicaSet per registered logical item
// from a ReplicaPlacement, addressable by name or by dense index (the
// workload generators draw flat key indices). LoadAll seeds every copy
// and announces the initial digests to the trace, so TraceAuditor A13
// treats pre-loaded values as committed provenance.
#ifndef SRC_REPLICA_CATALOG_H_
#define SRC_REPLICA_CATALOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/trace.h"
#include "src/replica/placement.h"
#include "src/system/cluster.h"
#include "src/system/replication.h"

namespace polyvalue {

class ReplicaCatalog {
 public:
  ReplicaCatalog(const ReplicaPlacement& placement,
                 std::vector<std::string> logical_names);

  // The canonical workload catalog: `count` items named
  // "<prefix><index>" ("g/0", "g/1", ...).
  static ReplicaCatalog Uniform(const ReplicaPlacement& placement,
                                const std::string& prefix, uint64_t count);

  size_t size() const { return sets_.size(); }
  const ReplicaSet& at(size_t index) const;
  // CHECK-fails for unregistered names.
  const ReplicaSet& Find(const std::string& logical_name) const;

  // Seeds every copy of every item with `initial` and, when `trace` is
  // non-null, announces each item's initial digest (replica_write).
  void LoadAll(SimCluster* cluster, const Value& initial,
               TraceSink* trace = nullptr) const;

 private:
  std::vector<ReplicaSet> sets_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace polyvalue

#endif  // SRC_REPLICA_CATALOG_H_
