// ReadRouter: serve reads from any live replica, failing over to the
// next copy on timeout or refusal.
//
// A routed read picks a preference order over the item's copies —
// same-region replicas first (local-read strategy) or placement order
// (primary-read strategy) — and submits a single-copy read transaction
// at the preferred copy's own site. If the copy's site is down, the
// attempt aborts, the result is still uncertain (a polyvalue mid-
// propagation), or no answer arrives within the failover timeout, the
// router abandons the attempt and tries the next copy. Only CERTAIN
// values are served: returning a polyvalue could leak an aborted
// branch, exactly what invariant A13 forbids.
//
// The router lives ABOVE the sites (like the serving front door): it
// emits replica_read / replica_failover trace events, keeps running
// while copies crash, and never touches engine state machines.
#ifndef SRC_REPLICA_ROUTER_H_
#define SRC_REPLICA_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/replica/topology.h"
#include "src/system/cluster.h"
#include "src/system/replication.h"

namespace polyvalue {

struct RoutedRead;  // one in-flight routed read (router.cc)

struct ReadRouterOptions {
  // Abandon an attempt after this much virtual time without an answer.
  double failover_timeout = 0.05;
  // Prefer copies in `local_region` (then placement order); false =
  // strict placement order (primary first).
  bool prefer_local = true;
  size_t local_region = 0;
  // Cap on copies tried per read; 0 = try every copy once.
  size_t max_attempts = 0;
  // Optional sink for replica_read / replica_failover events.
  TraceSink* trace = nullptr;
};

struct RouterCounters {
  uint64_t reads = 0;        // Read() calls
  uint64_t served = 0;       // settled with a certain value
  uint64_t failed = 0;       // exhausted every permitted copy
  uint64_t failovers = 0;    // abandoned attempts (all causes)
  uint64_t local_served = 0; // served by a copy in local_region
};

class ReadRouter {
 public:
  // `topology` must outlive the router.
  ReadRouter(SimCluster* cluster, const RegionTopology* topology,
             ReadRouterOptions options);

  using ReadCallback = std::function<void(const Result<Value>&)>;

  // Asynchronous: `done` fires during simulator steps (drive the sim).
  // Each attempt's read transaction is submitted at the consulted
  // copy's own site.
  void Read(const ReplicaSet& replicas, ReadCallback done);

  // Like Read(), but submits every attempt at `coordinator` (a live
  // front-end site, usually in the client's region): the engine's
  // prepares then cross the simulated WAN to the copy, so routed-read
  // latency reflects the client's distance to the replica consulted —
  // the quantity bench_georep compares across read strategies.
  void Read(const ReplicaSet& replicas, SiteId coordinator,
            ReadCallback done);

  // The copy order Read() tries for `replicas`.
  std::vector<SiteId> PreferenceOrder(const ReplicaSet& replicas) const;

  const RouterCounters& counters() const { return counters_; }

  // Publishes the `replica.*` metric family (docs/OBSERVABILITY.md).
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  void Attempt(std::shared_ptr<RoutedRead> state);
  void Emit(TraceEventType type, SiteId site, SiteId peer,
            const std::string& key, bool flag, uint64_t arg);

  SimCluster* cluster_;
  const RegionTopology* topology_;
  ReadRouterOptions options_;
  RouterCounters counters_;
};

}  // namespace polyvalue

#endif  // SRC_REPLICA_ROUTER_H_
