#include "src/replica/router.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/replica/consistency.h"

namespace polyvalue {

// One routed read in flight. `generation` fences the attempt's timer
// against its transaction callback: whichever fires first bumps it, so
// the loser sees a stale generation and stands down.
struct RoutedRead {
  ReplicaSet replicas;
  std::vector<SiteId> order;
  size_t limit = 0;      // copies this read may try
  size_t next = 0;       // next index in `order`
  uint64_t generation = 0;
  bool settled = false;
  // Fixed submission site; SiteId() = submit at each copy's own site.
  SiteId coordinator;
  ReadRouter::ReadCallback done;

  RoutedRead(ReplicaSet r, ReadRouter::ReadCallback d)
      : replicas(std::move(r)), done(std::move(d)) {}
};

ReadRouter::ReadRouter(SimCluster* cluster, const RegionTopology* topology,
                       ReadRouterOptions options)
    : cluster_(cluster), topology_(topology), options_(options) {
  POLYV_CHECK(cluster != nullptr);
  POLYV_CHECK(topology != nullptr);
  POLYV_CHECK_GT(options_.failover_timeout, 0.0);
}

std::vector<SiteId> ReadRouter::PreferenceOrder(
    const ReplicaSet& replicas) const {
  std::vector<SiteId> order;
  order.reserve(replicas.size());
  if (options_.prefer_local) {
    for (SiteId site : replicas.sites()) {
      if (topology_->RegionOf(site) == options_.local_region) {
        order.push_back(site);
      }
    }
  }
  for (SiteId site : replicas.sites()) {
    bool taken = false;
    for (SiteId t : order) {
      taken = taken || t == site;
    }
    if (!taken) {
      order.push_back(site);
    }
  }
  return order;
}

void ReadRouter::Read(const ReplicaSet& replicas, ReadCallback done) {
  Read(replicas, SiteId(), std::move(done));
}

void ReadRouter::Read(const ReplicaSet& replicas, SiteId coordinator,
                      ReadCallback done) {
  ++counters_.reads;
  auto state = std::make_shared<RoutedRead>(replicas, std::move(done));
  state->order = PreferenceOrder(replicas);
  state->limit = options_.max_attempts == 0
                     ? state->order.size()
                     : std::min(options_.max_attempts, state->order.size());
  state->coordinator = coordinator;
  Attempt(std::move(state));
}

void ReadRouter::Attempt(std::shared_ptr<RoutedRead> state) {
  if (state->settled) {
    return;  // polyverify: allow(TR01) duplicate wake-up, no step taken
  }
  if (state->next >= state->limit) {
    state->settled = true;
    ++counters_.failed;
    // Terminal failover event (no next site): exhausted routed reads
    // are protocol outcomes too, and the auditor should see them.
    Emit(TraceEventType::kReplicaFailover, SiteId(), SiteId(),
         state->replicas.logical_name(), false, state->next);
    state->done(UnavailableError(
        StrCat("no replica of '", state->replicas.logical_name(),
               "' answered after ", state->next, " attempt(s)")));
    return;
  }
  const size_t attempt = state->next++;
  const SiteId site = state->order[attempt];
  const SiteId next_site =
      state->next < state->limit ? state->order[state->next] : SiteId();

  // Liveness hint: a copy on a known-crashed site is skipped without
  // burning the failover timeout. Timeouts still cover the cases the
  // hint cannot see (partitions, one-way cuts, slow links).
  if (cluster_->site(site.value() - 1).crashed()) {
    ++counters_.failovers;
    Emit(TraceEventType::kReplicaFailover, site, next_site,
         state->replicas.logical_name(), false, attempt + 1);
    Attempt(std::move(state));
    return;
  }

  const uint64_t generation = ++state->generation;
  const std::string logical = state->replicas.logical_name();
  const size_t submit_index = state->coordinator.valid()
                                  ? state->coordinator.value() - 1
                                  : site.value() - 1;

  cluster_->Submit(
      submit_index, state->replicas.MakeRead(site),
      [this, state, generation, site, next_site,
       logical](const TxnResult& result) {
        if (state->settled || state->generation != generation) {
          return;  // a timer already abandoned this attempt
        }
        ++state->generation;  // fence out this attempt's timer
        if (result.committed() && result.output.is_certain()) {
          state->settled = true;
          ++counters_.served;
          if (topology_->RegionOf(site) == options_.local_region) {
            ++counters_.local_served;
          }
          const Value& value = result.output.certain_value();
          Emit(TraceEventType::kReplicaRead, site, SiteId(), logical, true,
               DigestValue(value));
          state->done(value);
          return;
        }
        // Refusal: aborted, or the copy is still a polyvalue mid-
        // propagation — serving it could leak an aborted branch (A13).
        ++counters_.failovers;
        Emit(TraceEventType::kReplicaFailover, site, next_site, logical,
             false, state->next);
        Attempt(state);
      });

  cluster_->sim().After(
      options_.failover_timeout,
      [this, state, generation, site, next_site, logical] {
        if (state->settled || state->generation != generation) {
          return;  // the attempt already settled or failed over
        }
        ++state->generation;  // fence out the late transaction callback
        ++counters_.failovers;
        Emit(TraceEventType::kReplicaFailover, site, next_site, logical,
             false, state->next);
        Attempt(state);
      });  // polyverify: allow(TR01) async: the callbacks above emit
}

void ReadRouter::Emit(TraceEventType type, SiteId site, SiteId peer,
                      const std::string& key, bool flag, uint64_t arg) {
  if (options_.trace == nullptr) {
    return;
  }
  TraceEvent event;
  event.time = cluster_->sim().now();
  event.type = type;
  event.site = site;
  event.peer = peer;
  event.key = key;
  event.flag = flag;
  event.arg = arg;
  options_.trace->Emit(event);
}

void ReadRouter::ExportMetrics(MetricsRegistry* registry) const {
  registry->SetCounter("replica.reads", counters_.reads);
  registry->SetCounter("replica.served", counters_.served);
  registry->SetCounter("replica.failed", counters_.failed);
  registry->SetCounter("replica.failovers", counters_.failovers);
  registry->SetCounter("replica.local_served", counters_.local_served);
}

}  // namespace polyvalue
