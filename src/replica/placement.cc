#include "src/replica/placement.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace polyvalue {

namespace {

// FNV-1a over a byte string, mixed with the policy seed via SplitMix64
// so distinct seeds give unrelated rings.
uint64_t HashBytes(uint64_t seed, const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return SplitMix64(seed ^ h).Next();
}

}  // namespace

ReplicaPlacement::ReplicaPlacement(RegionTopology topology,
                                   PlacementPolicy policy)
    : topology_(std::move(topology)), policy_(policy) {
  POLYV_CHECK_GT(policy_.replication_factor, 0u);
  POLYV_CHECK_LE(policy_.replication_factor, topology_.site_count());
  POLYV_CHECK_GT(policy_.virtual_nodes, 0u);
  for (SiteId site : topology_.AllSites()) {
    for (size_t v = 0; v < policy_.virtual_nodes; ++v) {
      const uint64_t point = HashBytes(
          policy_.seed, std::to_string(site.value()) + "#" +
                            std::to_string(v));
      ring_.emplace_back(point, site);
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const auto& a, const auto& b) {
              // Break hash ties by site so the ring order is total.
              return a.first != b.first ? a.first < b.first
                                        : a.second.value() < b.second.value();
            });
}

std::vector<SiteId> ReplicaPlacement::SitesFor(
    const std::string& logical_name) const {
  const uint64_t start = HashBytes(policy_.seed ^ 0x517e5eedULL,
                                   logical_name);
  // First ring point at or after the item's hash (wrapping).
  size_t index = std::lower_bound(
                     ring_.begin(), ring_.end(),
                     std::make_pair(start, SiteId(0)),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     }) -
                 ring_.begin();

  std::vector<SiteId> chosen;
  std::unordered_set<uint64_t> taken_sites;
  std::unordered_set<size_t> taken_regions;
  const size_t k = policy_.replication_factor;
  // Pass 1 honours region spread; pass 2 relaxes it for k > regions
  // (or spread disabled): any distinct site qualifies.
  for (int pass = 0; pass < 2 && chosen.size() < k; ++pass) {
    const bool spread = policy_.spread_regions && pass == 0;
    for (size_t step = 0; step < ring_.size() && chosen.size() < k;
         ++step) {
      const SiteId site = ring_[(index + step) % ring_.size()].second;
      if (taken_sites.count(site.value())) {
        continue;
      }
      const size_t region = topology_.RegionOf(site);
      if (spread && taken_regions.count(region)) {
        continue;
      }
      taken_sites.insert(site.value());
      taken_regions.insert(region);
      chosen.push_back(site);
    }
  }
  POLYV_CHECK_EQ(chosen.size(), k);
  return chosen;
}

ReplicaSet ReplicaPlacement::MakeReplicaSet(
    const std::string& logical_name) const {
  return ReplicaSet(logical_name, SitesFor(logical_name));
}

}  // namespace polyvalue
