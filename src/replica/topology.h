// Region topology: names the geography the cluster is deployed over.
//
// A RegionTopology groups SiteIds into named regions ("us-east",
// "eu-west", ...). It is pure metadata — sites do not know their
// region; the replica placement policy (placement.h), the WAN latency
// model (wan.h), and the read router (router.h) consult the topology to
// spread copies across regions, shape cross-region link delays, and
// prefer same-region replicas for reads.
#ifndef SRC_REPLICA_TOPOLOGY_H_
#define SRC_REPLICA_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"

namespace polyvalue {

struct RegionSpec {
  std::string name;
  std::vector<SiteId> sites;
};

class RegionTopology {
 public:
  // Regions must be non-empty and site membership disjoint.
  explicit RegionTopology(std::vector<RegionSpec> regions);

  // The canonical bench/test shape: `regions` regions of
  // `sites_per_region` sites each, named "r0", "r1", ..., covering
  // SiteIds 1..regions*sites_per_region row-major (region 0 holds
  // sites 1..sites_per_region, and so on) — matching how SimCluster
  // numbers its sites.
  static RegionTopology SymmetricGrid(size_t regions,
                                      size_t sites_per_region);

  size_t region_count() const { return regions_.size(); }
  const RegionSpec& region(size_t index) const;
  size_t site_count() const { return region_of_.size(); }

  bool Contains(SiteId site) const;
  // Region index of `site`; CHECK-fails for unknown sites.
  size_t RegionOf(SiteId site) const;
  const std::string& RegionNameOf(SiteId site) const;

  // Every site, region by region, in declaration order.
  std::vector<SiteId> AllSites() const;

 private:
  std::vector<RegionSpec> regions_;
  std::unordered_map<uint64_t, size_t> region_of_;  // SiteId -> index
};

}  // namespace polyvalue

#endif  // SRC_REPLICA_TOPOLOGY_H_
