// WAN model: region-aware latency shaping and geo-scale chaos events
// for the deterministic simulator.
//
// InstallWanProfile compiles a region-pair latency table down to the
// FaultPlan's per-directed-link delay overrides: every site pair whose
// regions differ samples from the inter-region (or per-pair) range,
// same-region pairs from the intra-region range. The fault plan applies
// them on every Send, so the whole protocol stack — prepares, votes,
// outcome propagation, routed reads — crosses the simulated WAN.
//
// The Schedule* helpers script geo-scale failures on the simulator
// clock: losing a whole region, healing it site-by-site (rolling
// recovery), and one-way partitions between regions (split-brain where
// one side still hears the other). They compose with the existing
// chaos vocabulary (crash/drop/symmetric cuts) in bench_cluster and
// bench_georep scenarios.
#ifndef SRC_REPLICA_WAN_H_
#define SRC_REPLICA_WAN_H_

#include <cstddef>
#include <vector>

#include "src/net/transport.h"
#include "src/replica/topology.h"
#include "src/system/cluster.h"

namespace polyvalue {

struct WanProfile {
  // Same-region one-way latency range (seconds).
  double intra_min = 0.0005;
  double intra_max = 0.002;
  // Default cross-region one-way latency range.
  double inter_min = 0.03;
  double inter_max = 0.08;
  // Optional per-region-pair overrides (applied both directions unless
  // two entries with swapped regions say otherwise — asymmetric WAN
  // paths are expressible).
  struct PairDelay {
    size_t from_region;
    size_t to_region;
    double min_seconds;
    double max_seconds;
  };
  std::vector<PairDelay> pairs;
};

// Installs per-directed-link delay ranges for every site pair in the
// topology. Idempotent; call again after changing the profile.
void InstallWanProfile(const RegionTopology& topology,
                       const WanProfile& profile, FaultPlan* faults);

// At virtual time `at`, crashes every site in `region`.
void ScheduleRegionLoss(SimCluster* cluster,
                        const RegionTopology& topology, size_t region,
                        double at);

// Starting at `at`, recovers `region`'s sites one every `stagger`
// seconds (0 = all at once) in declaration order.
void ScheduleRollingRecovery(SimCluster* cluster,
                             const RegionTopology& topology, size_t region,
                             double at, double stagger);

// Cuts the `from_region` -> `to_region` direction at `at` and restores
// it at `until` (packets the other way keep flowing).
void ScheduleOneWayPartition(SimCluster* cluster,
                             const RegionTopology& topology,
                             size_t from_region, size_t to_region,
                             double at, double until);

}  // namespace polyvalue

#endif  // SRC_REPLICA_WAN_H_
