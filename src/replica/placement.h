// Deterministic k-of-n replica placement.
//
// ReplicaPlacement maps a logical item name to the k sites that hold
// its copies, using a seeded consistent-hash ring with region
// awareness: each site contributes `virtual_nodes` points to the ring,
// the item's hash picks a start, and the ring walk collects distinct
// sites — preferring unused REGIONS first (so k copies spread over
// min(k, regions) regions), then distinct sites within already-used
// regions.
//
// Placement is a pure function of (topology, policy, name): every
// process that shares the seed computes the same replica sets with no
// coordination, and re-running a seeded sim re-derives the identical
// layout — the property every byte-reproducible bench relies on.
#ifndef SRC_REPLICA_PLACEMENT_H_
#define SRC_REPLICA_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/replica/topology.h"
#include "src/system/replication.h"

namespace polyvalue {

struct PlacementPolicy {
  // k: copies per logical item. Must be <= the topology's site count.
  size_t replication_factor = 3;
  // Prefer placing copies in distinct regions before reusing one.
  bool spread_regions = true;
  // Seeds the ring point hashes; two placements with the same seed and
  // topology agree everywhere.
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  // Ring points per site; more points smooth the load distribution.
  size_t virtual_nodes = 16;
};

class ReplicaPlacement {
 public:
  ReplicaPlacement(RegionTopology topology, PlacementPolicy policy);

  // The k sites holding `logical_name`, in placement order: the
  // first-listed site is the item's primary copy.
  std::vector<SiteId> SitesFor(const std::string& logical_name) const;

  // Convenience: the ReplicaSet for `logical_name`.
  ReplicaSet MakeReplicaSet(const std::string& logical_name) const;

  const RegionTopology& topology() const { return topology_; }
  const PlacementPolicy& policy() const { return policy_; }

 private:
  RegionTopology topology_;
  PlacementPolicy policy_;
  // Sorted (hash, site) ring points.
  std::vector<std::pair<uint64_t, SiteId>> ring_;
};

}  // namespace polyvalue

#endif  // SRC_REPLICA_PLACEMENT_H_
