#include "src/replica/consistency.h"

#include <map>
#include <optional>
#include <utility>

#include "src/common/strings.h"

namespace polyvalue {

uint64_t DigestValue(const Value& value) {
  const std::string repr = value.ToString();
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : repr) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h == 0 ? 1 : h;  // 0 is reserved for "no certain value"
}

namespace {

// The certain value of one copy, nullopt when the copy is missing,
// uncertain, or its site is down.
std::optional<Value> CopyValue(SimCluster* cluster,
                               const ReplicaSet& replicas, SiteId site) {
  Site& s = cluster->site(site.value() - 1);
  if (s.crashed()) {
    return std::nullopt;
  }
  const Result<PolyValue> copy = s.Peek(replicas.KeyAt(site));
  if (!copy.ok() || !copy.value().is_certain()) {
    return std::nullopt;
  }
  return copy.value().certain_value();
}

}  // namespace

ReplicaCheckReport CheckReplicaSet(SimCluster* cluster,
                                   const ReplicaSet& replicas) {
  ReplicaCheckReport report;
  struct CopyState {
    SiteId site;
    std::optional<Value> value;  // nullopt = missing or uncertain
  };
  std::vector<CopyState> copies;
  for (SiteId site : replicas.sites()) {
    Site& s = cluster->site(site.value() - 1);
    if (s.crashed()) {
      ++report.skipped_down;
      continue;
    }
    ++report.copies_checked;
    CopyState state{site, std::nullopt};
    const Result<PolyValue> copy = s.Peek(replicas.KeyAt(site));
    if (!copy.ok()) {
      ++report.missing;
      report.problems.push_back(StrCat("copy '", replicas.KeyAt(site),
                                       "' missing at site ", site.value()));
    } else if (!copy.value().is_certain()) {
      ++report.uncertain;
      report.problems.push_back(StrCat("copy '", replicas.KeyAt(site),
                                       "' uncertain at site ", site.value()));
    } else {
      state.value = copy.value().certain_value();
    }
    copies.push_back(std::move(state));
  }

  // Majority vote over the certain copies, digest-keyed. std::map keeps
  // the tally deterministic; ties break to the first digest reaching
  // the best count, i.e. the earliest-listed copy's value.
  std::map<uint64_t, size_t> votes;
  std::optional<uint64_t> majority;
  size_t best = 0;
  for (const CopyState& copy : copies) {
    if (!copy.value.has_value()) {
      continue;
    }
    const size_t count = ++votes[DigestValue(*copy.value)];
    if (count > best) {
      best = count;
      majority = DigestValue(*copy.value);
    }
  }
  if (majority.has_value()) {
    for (const CopyState& copy : copies) {
      if (copy.value.has_value() && DigestValue(*copy.value) != *majority) {
        ++report.divergent;
        report.problems.push_back(StrCat("copy '", replicas.KeyAt(copy.site),
                                         "' diverges at site ",
                                         copy.site.value()));
      }
    }
  }
  return report;
}

size_t RepairReplicaSet(SimCluster* cluster, const ReplicaSet& replicas,
                        TraceSink* trace) {
  // Majority certain value among live copies.
  std::map<uint64_t, std::pair<size_t, Value>> votes;
  std::optional<Value> majority;
  size_t best = 0;
  for (SiteId site : replicas.sites()) {
    const std::optional<Value> value = CopyValue(cluster, replicas, site);
    if (!value.has_value()) {
      continue;
    }
    auto& entry = votes.emplace(DigestValue(*value),
                                std::make_pair(size_t{0}, *value))
                      .first->second;
    if (++entry.first > best) {
      best = entry.first;
      majority = entry.second;
    }
  }
  if (!majority.has_value()) {
    return 0;  // nothing certain to repair from
  }
  const uint64_t majority_digest = DigestValue(*majority);

  size_t repaired = 0;
  for (SiteId site : replicas.sites()) {
    Site& s = cluster->site(site.value() - 1);
    if (s.crashed()) {
      continue;
    }
    const Result<PolyValue> copy = s.Peek(replicas.KeyAt(site));
    const bool missing = !copy.ok();
    const bool divergent =
        copy.ok() && copy.value().is_certain() &&
        DigestValue(copy.value().certain_value()) != majority_digest;
    if (!missing && !divergent) {
      continue;  // consistent, or uncertain (left to propagation)
    }
    s.Load(replicas.KeyAt(site), *majority);
    ++repaired;
    if (trace != nullptr) {
      TraceEvent event;
      event.time = cluster->sim().now();
      event.type = TraceEventType::kReplicaRepair;
      event.site = site;
      event.key = replicas.logical_name();
      event.arg = majority_digest;
      trace->Emit(event);
    }
  }
  return repaired;
}

void EmitReplicaDigests(SimCluster* cluster, const ReplicaSet& replicas,
                        TraceSink* trace) {
  if (trace == nullptr) {
    return;
  }
  TraceEvent opener;
  opener.time = cluster->sim().now();
  opener.type = TraceEventType::kReplicaSetInfo;
  opener.site = replicas.sites().front();
  opener.key = replicas.logical_name();
  opener.arg = replicas.size();
  trace->Emit(opener);
  for (SiteId site : replicas.sites()) {
    const std::optional<Value> value = CopyValue(cluster, replicas, site);
    TraceEvent event;
    event.time = cluster->sim().now();
    event.type = TraceEventType::kReplicaDigest;
    event.site = site;
    event.key = replicas.logical_name();
    event.arg = value.has_value() ? DigestValue(*value) : 0;
    trace->Emit(event);
  }
}

}  // namespace polyvalue
