// Deterministic pseudo-random number generation.
//
// Everything stochastic in the library — the §4.2 simulation, failure
// injection, workload generators — draws from Rng so that a fixed seed
// reproduces a run bit-for-bit. The core generator is xoshiro256**,
// seeded through SplitMix64 (the recommended pairing from Blackman &
// Vigna); distributions are implemented directly so results do not
// depend on the standard library's unspecified algorithms.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace polyvalue {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256** deterministic generator with direct distribution sampling.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) {
      word = sm.Next();
    }
  }

  // Uniform on [0, 2^64).
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform on [0, bound). bound must be positive. Uses rejection to avoid
  // modulo bias.
  uint64_t NextBelow(uint64_t bound) {
    POLYV_CHECK_GT(bound, 0u);
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = NextUint64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer on [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    POLYV_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform on [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial.
  bool NextBool(double p_true) {
    return NextDouble() < p_true;
  }

  // Exponential with the given mean (mean = 1 / rate). mean must be > 0.
  double NextExponential(double mean);

  // Geometric-like integer draw: floor of an exponential with given mean.
  // Used by the §4.2 simulation to pick the read-set size d ~ Exp(D).
  uint64_t NextExponentialCount(double mean);

  // Poisson with the given mean (inversion for small means, PTRS otherwise).
  uint64_t NextPoisson(double mean);

  // Samples k distinct values from [0, n). k <= n. Order unspecified.
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t k);

  // Forks an independent stream (for per-site generators).
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<uint64_t, 4> state_;
};

}  // namespace polyvalue

#endif  // SRC_COMMON_RNG_H_
