#include "src/common/status.h"

namespace polyvalue {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kUncertain:
      return "UNCERTAIN";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status AbortedError(std::string message) {
  return Status(StatusCode::kAborted, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status TimedOutError(std::string message) {
  return Status(StatusCode::kTimedOut, std::move(message));
}
Status UncertainError(std::string message) {
  return Status(StatusCode::kUncertain, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

}  // namespace polyvalue
