#include "src/common/check.h"

namespace polyvalue {

void CheckFailure(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace polyvalue
