// CRC-32 (IEEE 802.3 polynomial), table-driven. Used to detect torn or
// corrupt write-ahead-log records on recovery.
#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace polyvalue {

uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(const std::string& s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace polyvalue

#endif  // SRC_COMMON_CRC32_H_
