#include "src/common/rng.h"

#include <cmath>
#include <unordered_set>

namespace polyvalue {

double Rng::NextExponential(double mean) {
  POLYV_CHECK_GT(mean, 0.0);
  // Inversion; guard against log(0).
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return -mean * std::log(u);
}

uint64_t Rng::NextExponentialCount(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  return static_cast<uint64_t>(NextExponential(mean));
}

uint64_t Rng::NextPoisson(double mean) {
  POLYV_CHECK_GE(mean, 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double product = NextDouble();
    while (product > limit) {
      ++k;
      product *= NextDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction is adequate for the
  // large-mean regime the simulators use (arrivals per tick).
  // Box-Muller for the normal draw.
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double sample = mean + std::sqrt(mean) * z + 0.5;
  if (sample < 0.0) {
    return 0;
  }
  return static_cast<uint64_t>(sample);
}

std::vector<uint64_t> Rng::SampleDistinct(uint64_t n, uint64_t k) {
  POLYV_CHECK_LE(k, n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) {
    return out;
  }
  // Floyd's algorithm: k iterations, O(k) expected set operations.
  std::unordered_set<uint64_t> seen;
  seen.reserve(k * 2);
  for (uint64_t j = n - k; j < n; ++j) {
    const uint64_t t = NextBelow(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace polyvalue
