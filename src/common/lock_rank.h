// The global lock-rank order: the single declared answer to "which
// mutex may be held while acquiring which".
//
// Every polyvalue::Mutex in src/ is declared with POLYV_MUTEX_RANK(r),
// which does two things at once:
//   * statically, it attaches ACQUIRED_AFTER(<rank boundary>) to the
//     declaration, tying the mutex into the ACQUIRED_BEFORE chain of
//     boundary sentinels below so Clang's thread-safety analysis and
//     tools/polyverify (rule LK01) can see the declared order; and
//   * at runtime, it brace-initialises the Mutex with its LockRank so
//     the POLYV_LOCKDEP validator (src/common/lockdep.h) can check the
//     observed acquisition order against the declared one.
//
// Ranks are a strict total order: a thread may only acquire a mutex of
// STRICTLY GREATER rank than every mutex it already holds. Lower rank =
// outermost. The gaps of 10 leave room to splice in new layers without
// renumbering (see "Adding a new mutex" in CONTRIBUTING.md).
//
// The chain of boundary sentinels is written out by hand (attributes
// cannot be generated back-to-front by the X-macro); polyverify LK01
// cross-checks that the hand-written chain, the enum values, and the
// per-mutex bindings all agree, so drift between them is a CI failure,
// not a silent divergence.
#ifndef SRC_COMMON_LOCK_RANK_H_
#define SRC_COMMON_LOCK_RANK_H_

#ifndef CAPABILITY
#error "Include src/common/thread_annotations.h, not lock_rank.h directly."
#endif

// Rank table. Rationale for the order (see docs/STATIC_ANALYSIS.md for
// the per-edge evidence):
//   kSvcAdmission      serving front door's admission state (token
//                      bucket + in-flight count, src/svc/admission.h).
//                      The admission decision gates every request
//                      before any cluster/engine lock exists, so it is
//                      the outermost lock in the system. Never held
//                      across Submit().
//   kSvcRetryBudget    the front door's shared retry budget; consulted
//                      between attempts, with nothing else held, but
//                      conceptually part of the serving layer above the
//                      client wait latch.
//   kClientWait        cluster SubmitAndWait's completion latch; held
//                      across Submit(), so it must precede everything
//                      below the serving layer.
//   kBatching          BatchingTransport queue; its flusher calls into
//                      the underlying transport.
//   kTransport         mem/tcp transport registries; Send() locks the
//                      destination mailbox/endpoint and consults the
//                      fault plan while holding it.
//   kTransportEndpoint per-destination mailbox / tcp endpoint.
//   kFaultPlan         drop/partition decisions, taken under Send().
//   kTransportStats    mem transport counters.
//   kEngine            the txn engine's one protocol mutex; handlers
//                      append to the WAL, touch the store/outcome
//                      table, schedule timers and trace while holding
//                      it (side effects to peers go through the Outbox
//                      AFTER unlock, so kEngine < kTransport edges
//                      never form).
//   kPaxosEngine       the Paxos Commit engine's one protocol mutex;
//                      same discipline as kEngine (Outbox after
//                      unlock), ordered after it so a site hosting
//                      both legs can never invert them.
//   kScheduler         timer wheel; ScheduleAfter is called under the
//                      engine mutex.
//   kStoreLockPlane    item-store lock plane (disjoint from shards by
//                      design, ordered before them for safety).
//   kStoreShard        item-store data shards (locked one at a time).
//   kOutcomeTable      durable outcome map.
//   kWal               WAL buffer/group-commit mutex; Append runs under
//                      the engine mutex.
//   kTrace             VectorTraceSink buffer; tracing happens under
//                      any of the above.
//   kLogger            logging serialisation; innermost of all.
#define POLYV_LOCK_RANK_LIST(X) \
  X(kSvcAdmission, 10)          \
  X(kSvcRetryBudget, 20)        \
  X(kClientWait, 30)            \
  X(kBatching, 40)              \
  X(kTransport, 50)             \
  X(kTransportEndpoint, 60)     \
  X(kFaultPlan, 70)             \
  X(kTransportStats, 80)        \
  X(kEngine, 90)                \
  X(kPaxosEngine, 95)           \
  X(kScheduler, 100)            \
  X(kStoreLockPlane, 110)       \
  X(kStoreShard, 120)           \
  X(kOutcomeTable, 130)         \
  X(kWal, 140)                  \
  X(kTrace, 150)                \
  X(kLogger, 160)

namespace polyvalue {

enum class LockRank : int {
  // Rank 0 is reserved for mutexes outside the declared order (test
  // locals constructed with the default Mutex()). polyverify LK01
  // rejects any Mutex *declaration in src/* without an explicit rank.
  kUnranked = 0,
#define POLYV_LOCK_RANK_ENUM_ENTRY_(name, value) name = value,
  POLYV_LOCK_RANK_LIST(POLYV_LOCK_RANK_ENUM_ENTRY_)
#undef POLYV_LOCK_RANK_ENUM_ENTRY_
};

constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "kUnranked";
#define POLYV_LOCK_RANK_NAME_ENTRY_(name, value) \
  case LockRank::name:                           \
    return #name;
      POLYV_LOCK_RANK_LIST(POLYV_LOCK_RANK_NAME_ENTRY_)
#undef POLYV_LOCK_RANK_NAME_ENTRY_
  }
  return "unknown";
}

constexpr const char* LockRankName(int rank) {
  return LockRankName(static_cast<LockRank>(rank));
}

namespace lockrank {

// Zero-size capability sentinels, one per rank, carrying the declared
// order as real ACQUIRED_BEFORE attributes. Declared innermost-first
// because an attribute argument must refer to an already-declared
// object; the resulting chain still reads
//   g_kSvcAdmission < g_kSvcRetryBudget < g_kClientWait < ... < g_kLogger.
class CAPABILITY("lock_rank") LockRankBoundary {};

inline LockRankBoundary g_kLogger;
inline LockRankBoundary g_kTrace ACQUIRED_BEFORE(g_kLogger);
inline LockRankBoundary g_kWal ACQUIRED_BEFORE(g_kTrace);
inline LockRankBoundary g_kOutcomeTable ACQUIRED_BEFORE(g_kWal);
inline LockRankBoundary g_kStoreShard ACQUIRED_BEFORE(g_kOutcomeTable);
inline LockRankBoundary g_kStoreLockPlane ACQUIRED_BEFORE(g_kStoreShard);
inline LockRankBoundary g_kScheduler ACQUIRED_BEFORE(g_kStoreLockPlane);
inline LockRankBoundary g_kPaxosEngine ACQUIRED_BEFORE(g_kScheduler);
inline LockRankBoundary g_kEngine ACQUIRED_BEFORE(g_kPaxosEngine);
inline LockRankBoundary g_kTransportStats ACQUIRED_BEFORE(g_kEngine);
inline LockRankBoundary g_kFaultPlan ACQUIRED_BEFORE(g_kTransportStats);
inline LockRankBoundary g_kTransportEndpoint ACQUIRED_BEFORE(g_kFaultPlan);
inline LockRankBoundary g_kTransport ACQUIRED_BEFORE(g_kTransportEndpoint);
inline LockRankBoundary g_kBatching ACQUIRED_BEFORE(g_kTransport);
inline LockRankBoundary g_kClientWait ACQUIRED_BEFORE(g_kBatching);
inline LockRankBoundary g_kSvcRetryBudget ACQUIRED_BEFORE(g_kClientWait);
inline LockRankBoundary g_kSvcAdmission ACQUIRED_BEFORE(g_kSvcRetryBudget);

}  // namespace lockrank
}  // namespace polyvalue

// Declares a Mutex's place in the global order. Expands to the static
// ACQUIRED_AFTER annotation plus the runtime rank initialiser:
//   mutable Mutex mu_ POLYV_MUTEX_RANK(kEngine);
#define POLYV_MUTEX_RANK(rank)                  \
  ACQUIRED_AFTER(::polyvalue::lockrank::g_##rank) { \
    ::polyvalue::LockRank::rank                 \
  }

#endif  // SRC_COMMON_LOCK_RANK_H_
