// Clang thread-safety annotations and the annotated lock primitives the
// whole tree is built on.
//
// Every mutex in src/ is a polyvalue::Mutex and every mutex-protected
// member is declared GUARDED_BY(its mutex), so lock discipline is
// checked at COMPILE time under Clang's thread-safety analysis
// (Hutchins et al., "C/C++ Thread Safety Analysis") instead of waiting
// for a TSan schedule to expose a race at runtime. CI builds with
// -DPOLYV_THREAD_SAFETY=ON (clang, -Werror=thread-safety); under GCC
// the attributes expand to nothing and the wrappers are zero-cost
// shims over <mutex>.
//
// polylint enforces the flip side: no raw std::mutex /
// std::condition_variable declarations anywhere in src/ outside this
// header, so new concurrent state cannot silently opt out of analysis.
//
// Conventions (see docs/STATIC_ANALYSIS.md):
//   * data members:      T field_ GUARDED_BY(mu_);
//   * called-with-lock:  void Helper() REQUIRES(mu_);
//   * scoped locking:    MutexLock lock(&mu_);
//   * cv waits:          cv_.Wait(&mu_) inside a while (!predicate) loop.
#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define POLYV_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define POLYV_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

#define CAPABILITY(x) POLYV_THREAD_ANNOTATION__(capability(x))

#define SCOPED_CAPABILITY POLYV_THREAD_ANNOTATION__(scoped_lockable)

#define GUARDED_BY(x) POLYV_THREAD_ANNOTATION__(guarded_by(x))

#define PT_GUARDED_BY(x) POLYV_THREAD_ANNOTATION__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  POLYV_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  POLYV_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  POLYV_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  POLYV_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  POLYV_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  POLYV_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  POLYV_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  POLYV_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  POLYV_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) POLYV_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  POLYV_THREAD_ANNOTATION__(assert_capability(x))

#define RETURN_CAPABILITY(x) POLYV_THREAD_ANNOTATION__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  POLYV_THREAD_ANNOTATION__(no_thread_safety_analysis)

// The declared global lock order (LockRank, POLYV_MUTEX_RANK, and the
// ACQUIRED_BEFORE boundary chain). Must come after the macros above.
#include "src/common/lock_rank.h"

// Runtime lock-order validation: -DPOLYV_LOCKDEP=ON routes every
// Mutex acquire/release through src/common/lockdep.h, which checks the
// observed order against the declared ranks and hunts for cycles.
#if defined(POLYV_LOCKDEP)
#include <source_location>

#include "src/common/lockdep.h"
#endif

namespace polyvalue {

class CondVar;

// std::mutex with a capability annotation, so fields can be declared
// GUARDED_BY(mu_) and helpers REQUIRES(mu_). Prefer MutexLock for
// scoped sections; Lock()/Unlock() exist for the few flows (group
// commit, dispatcher loops) that drop the lock mid-function.
class CAPABILITY("mutex") Mutex {
 public:
  // Unranked: only for mutexes OUTSIDE src/ (test fixtures, scratch
  // tooling). Every Mutex declared in src/ must carry an explicit rank
  // via POLYV_MUTEX_RANK — polyverify rule LK01 enforces this.
  Mutex() = default;
  // Places this mutex in the declared global lock order
  // (src/common/lock_rank.h). Spelled POLYV_MUTEX_RANK(kRank) at the
  // declaration, which also attaches the ACQUIRED_AFTER annotation.
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(POLYV_LOCKDEP)
  ~Mutex() { lockdep::OnDestroy(this); }

  void Lock(const std::source_location& loc =
                std::source_location::current()) ACQUIRE() {
    // Hook first: a recursive acquisition is reported before the
    // std::mutex self-deadlock hangs the thread.
    lockdep::OnAcquire(this, static_cast<int>(rank_), loc);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    lockdep::OnRelease(this);
    mu_.unlock();
  }
  bool TryLock(const std::source_location& loc =
                   std::source_location::current()) TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockdep::OnAcquire(this, static_cast<int>(rank_), loc);
    return true;
  }
#else
  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
#endif

  // Documents (and under clang, tells the analysis) that the caller
  // already holds this mutex when the fact is not provable locally.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const LockRank rank_ = LockRank::kUnranked;
};

// RAII guard over Mutex; the annotated replacement for
// std::lock_guard<std::mutex>.
class SCOPED_CAPABILITY MutexLock {
 public:
#if defined(POLYV_LOCKDEP)
  // Forwards the caller's location so lockdep reports name the
  // `MutexLock lock(&mu_);` line, not this constructor.
  explicit MutexLock(Mutex* mu, const std::source_location& loc =
                                    std::source_location::current())
      ACQUIRE(mu) : mu_(mu) {
    mu_->Lock(loc);
  }
#else
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
#endif
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to Mutex. Waits require the mutex held (the
// analysis enforces it) and, as with any cv, must sit in a while loop
// re-checking their predicate — there is deliberately no predicate
// overload, so the loop (and the guarded reads inside it) stays visible
// to the thread-safety analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Returns true when notified, false on timeout. Spurious wakeups
  // count as notified — callers re-check their predicate either way.
  bool WaitFor(Mutex* mu, double seconds) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex* mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace polyvalue

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
