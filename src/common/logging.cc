#include "src/common/logging.h"

#include <cstdio>

namespace polyvalue {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::Get() {
  static Logger* instance = new Logger();
  return *instance;
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(this->level())) {
    return;
  }
  MutexLock lock(&mu_);
  if (capture_) {
    captured_ += LogLevelName(level);
    captured_ += ' ';
    captured_ += message;
    captured_ += '\n';
  } else {
    std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), message.c_str());
  }
}

void Logger::set_capture(bool capture) {
  MutexLock lock(&mu_);
  capture_ = capture;
  if (!capture) {
    captured_.clear();
  }
}

std::string Logger::TakeCaptured() {
  MutexLock lock(&mu_);
  std::string out;
  out.swap(captured_);
  return out;
}

}  // namespace polyvalue
