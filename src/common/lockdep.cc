#include "src/common/lockdep.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include <unistd.h>

#include "src/common/thread_annotations.h"

namespace polyvalue {
namespace lockdep {
namespace {

// The validator's own lock must be a raw std::mutex: an instrumented
// polyvalue::Mutex would re-enter the hooks it serialises.
std::mutex g_mu;  // polylint: allow(MTX01)

struct Site {
  const char* file = "?";
  unsigned line = 0;
  const char* function = "?";
};

std::string SiteStr(const Site& s) {
  std::ostringstream os;
  os << s.file << ":" << s.line << " (" << s.function << ")";
  return os.str();
}

struct Held {
  const void* mu;
  int rank;
  Site site;
};

// Per-thread stack of currently held instrumented mutexes, in
// acquisition order.
thread_local std::vector<Held> t_held;

struct Node {
  int rank = 0;
  Site first_site;
};

struct Edge {
  // Acquisition sites of the FIRST observation of this pair: where the
  // already-held mutex was taken, and where the new one was.
  Site held_site;
  Site acquired_site;
  int held_rank = 0;
  int acquired_rank = 0;
  size_t count = 0;
};

// Pointer-level graph for cycle detection. Pruned on mutex destruction
// so address reuse cannot fabricate cycles across lifetimes.
std::map<const void*, Node> g_nodes;
std::map<std::pair<const void*, const void*>, Edge> g_edges;

// Rank-level edge set for the JSON dump; never pruned, so the observed
// order survives engine/cluster teardown until process exit.
std::map<std::pair<int, int>, Edge> g_rank_edges;

bool g_dirty = false;  // new pointer edges since the last cycle scan
int g_report_count = 0;
ReportHandler g_handler = nullptr;
std::vector<std::string> g_reports;
// Dedupe: rank pairs already reported as inversions, and canonical
// signatures of already-reported cycles, so a hot path doesn't repeat
// one report thousands of times.
std::set<std::pair<int, int>> g_reported_rank_pairs;
std::set<std::string> g_reported_cycles;

void EmitLocked(const std::string& text) {
  ++g_report_count;
  g_reports.push_back(text);
  if (g_handler != nullptr) {
    g_handler(text);
    return;
  }
  std::fprintf(stderr, "[lockdep] %s\n", text.c_str());
  std::fflush(stderr);
  if (std::getenv("POLYV_LOCKDEP_ABORT") != nullptr) std::abort();
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

std::string DumpJsonLocked() {
  std::ostringstream os;
  os << "{\n  \"rank_order\": [";
  bool first = true;
#define POLYV_LOCKDEP_RANK_JSON_(name, value)                          \
  os << (first ? "" : ", ") << "{\"name\": \"" #name "\", \"rank\": "  \
     << value << "}";                                                  \
  first = false;
  POLYV_LOCK_RANK_LIST(POLYV_LOCKDEP_RANK_JSON_)
#undef POLYV_LOCKDEP_RANK_JSON_
  os << "],\n  \"edges\": [";
  first = true;
  for (const auto& [key, e] : g_rank_edges) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"held_rank\": " << key.first << ", \"held_name\": \""
       << LockRankName(key.first) << "\", \"acquired_rank\": " << key.second
       << ", \"acquired_name\": \"" << LockRankName(key.second)
       << "\", \"count\": " << e.count << ", \"held_site\": \""
       << JsonEscape(SiteStr(e.held_site)) << "\", \"acquired_site\": \""
       << JsonEscape(SiteStr(e.acquired_site)) << "\"}";
  }
  os << (first ? "]" : "\n  ]") << ",\n  \"reports\": [";
  first = true;
  for (const auto& r : g_reports) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << JsonEscape(r) << "\"";
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

// DFS over the pointer graph; returns the first cycle found as the
// sequence of nodes closing back on the start, or empty.
bool FindCycleFrom(const void* start, const void* at,
                   std::set<const void*>* visiting,
                   std::vector<const void*>* path) {
  visiting->insert(at);
  path->push_back(at);
  auto it = g_edges.lower_bound({at, nullptr});
  for (; it != g_edges.end() && it->first.first == at; ++it) {
    const void* next = it->first.second;
    if (next == start) return true;
    if (visiting->count(next) == 0 &&
        FindCycleFrom(start, next, visiting, path)) {
      return true;
    }
  }
  path->pop_back();
  return false;
}

void CheckCyclesLocked() {
  g_dirty = false;
  for (const auto& [node, info] : g_nodes) {
    (void)info;
    std::set<const void*> visiting;
    std::vector<const void*> path;
    if (!FindCycleFrom(node, node, &visiting, &path)) continue;
    // Canonicalise on the smallest pointer so each cycle reports once.
    if (node != *std::min_element(path.begin(), path.end())) continue;
    std::ostringstream sig;
    for (const void* p : path) sig << p << ">";
    if (!g_reported_cycles.insert(sig.str()).second) continue;
    std::ostringstream os;
    os << "lock-order cycle between " << path.size() << " mutexes:";
    for (size_t i = 0; i < path.size(); ++i) {
      const void* a = path[i];
      const void* b = path[(i + 1) % path.size()];
      const Edge& e = g_edges.at({a, b});
      os << "\n  holding " << LockRankName(e.held_rank) << " mutex " << a
         << " (acquired at " << SiteStr(e.held_site) << ") while acquiring "
         << LockRankName(e.acquired_rank) << " mutex " << b << " at "
         << SiteStr(e.acquired_site);
    }
    EmitLocked(os.str());
  }
}

void AtExitDump() { DumpJsonToEnvDir(); }

void EnsureAtExitLocked() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  std::atexit(AtExitDump);
}

}  // namespace

void OnAcquire(const void* mu, int rank, const std::source_location& loc) {
  const Site site{loc.file_name(), loc.line(), loc.function_name()};
  std::lock_guard<std::mutex> guard(g_mu);  // polylint: allow(MTX01)
  EnsureAtExitLocked();
  Node& node = g_nodes[mu];
  node.rank = rank;
  if (node.first_site.line == 0) node.first_site = site;
  for (const Held& h : t_held) {
    if (h.mu == mu) {
      std::ostringstream os;
      os << "recursive acquisition of " << LockRankName(rank) << " mutex "
         << mu << ": first at " << SiteStr(h.site) << ", again at "
         << SiteStr(site) << " (this mutex is not recursive; self-deadlock)";
      EmitLocked(os.str());
      continue;
    }
    // Rank discipline: strictly increasing among ranked mutexes.
    if (rank != 0 && h.rank != 0 && rank <= h.rank &&
        g_reported_rank_pairs.insert({h.rank, rank}).second) {
      std::ostringstream os;
      os << "lock-rank violation: acquiring " << LockRankName(rank)
         << " (rank " << rank << ") mutex " << mu << " at " << SiteStr(site)
         << " while holding " << LockRankName(h.rank) << " (rank " << h.rank
         << ") mutex " << h.mu << " acquired at " << SiteStr(h.site)
         << "; declared order requires strictly increasing ranks";
      EmitLocked(os.str());
    }
    Edge& edge = g_edges[{h.mu, mu}];
    if (edge.count == 0) {
      edge.held_site = h.site;
      edge.acquired_site = site;
      edge.held_rank = h.rank;
      edge.acquired_rank = rank;
      g_dirty = true;
    }
    ++edge.count;
    Edge& redge = g_rank_edges[{h.rank, rank}];
    if (redge.count == 0) {
      redge.held_site = h.site;
      redge.acquired_site = site;
      redge.held_rank = h.rank;
      redge.acquired_rank = rank;
    }
    ++redge.count;
  }
  t_held.push_back(Held{mu, rank, site});
}

void OnRelease(const void* mu) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      break;
    }
  }
  std::lock_guard<std::mutex> guard(g_mu);  // polylint: allow(MTX01)
  if (g_dirty) CheckCyclesLocked();
}

void OnDestroy(const void* mu) {
  std::lock_guard<std::mutex> guard(g_mu);  // polylint: allow(MTX01)
  g_nodes.erase(mu);
  for (auto it = g_edges.begin(); it != g_edges.end();) {
    if (it->first.first == mu || it->first.second == mu) {
      it = g_edges.erase(it);
    } else {
      ++it;
    }
  }
}

ReportHandler SetReportHandler(ReportHandler handler) {
  std::lock_guard<std::mutex> guard(g_mu);  // polylint: allow(MTX01)
  ReportHandler prev = g_handler;
  g_handler = handler;
  return prev;
}

int ReportCount() {
  std::lock_guard<std::mutex> guard(g_mu);  // polylint: allow(MTX01)
  return g_report_count;
}

void ResetForTest() {
  std::lock_guard<std::mutex> guard(g_mu);  // polylint: allow(MTX01)
  g_nodes.clear();
  g_edges.clear();
  g_rank_edges.clear();
  g_reports.clear();
  g_reported_rank_pairs.clear();
  g_reported_cycles.clear();
  g_report_count = 0;
  g_dirty = false;
  t_held.clear();
}

std::string DumpJson() {
  std::lock_guard<std::mutex> guard(g_mu);  // polylint: allow(MTX01)
  return DumpJsonLocked();
}

bool DumpJsonToEnvDir() {
  const char* dir = std::getenv("POLYV_LOCKDEP_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return false;
  std::string json;
  {
    std::lock_guard<std::mutex> guard(g_mu);  // polylint: allow(MTX01)
    json = DumpJsonLocked();
  }
  std::ostringstream path;
  path << dir << "/lockdep." << ::getpid() << ".json";
  std::FILE* f = std::fopen(path.str().c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace lockdep
}  // namespace polyvalue
