// Runtime lock-order validator ("lockdep"), the dynamic half of the
// lock-rank discipline declared in src/common/lock_rank.h.
//
// When the tree is built with -DPOLYV_LOCKDEP=ON, polyvalue::Mutex
// calls the hooks below on every acquire/release. The validator keeps a
// per-thread stack of held locks and merges every observed
// held-while-acquiring pair into one global lock-order graph. It
// reports, naming BOTH acquisition sites:
//   * a rank-order violation at acquire time — acquiring a mutex whose
//     declared rank is <= the rank of a mutex already held; and
//   * a cycle in the observed graph, checked at release time, even when
//     every participating mutex is unranked — the classic ABBA shape
//     assembled across threads.
//
// The observed graph survives mutex destruction as a rank-level edge
// set and can be dumped as JSON (POLYV_LOCKDEP_JSON_DIR), which CI
// feeds to `polyverify --check-lockdep` to assert that every observed
// edge is implied by the declared rank order.
//
// The hooks deliberately take `const void*` + `int` so this header has
// no dependency on thread_annotations.h (which includes us when
// POLYV_LOCKDEP is defined). Condition-variable waits release and
// re-acquire the underlying std::mutex without passing through these
// hooks; the held-stack stays consistent because the waiting thread
// acquires nothing else while blocked.
#ifndef SRC_COMMON_LOCKDEP_H_
#define SRC_COMMON_LOCKDEP_H_

#include <source_location>
#include <string>

namespace polyvalue {
namespace lockdep {

// Called by Mutex immediately before a blocking lock() (so a
// self-deadlock is reported before the thread hangs) and immediately
// after a successful try_lock().
void OnAcquire(const void* mu, int rank,
               const std::source_location& loc =
                   std::source_location::current());

// Called by Mutex before unlock(). Pops the per-thread stack and, when
// the graph gained edges since the last check, runs cycle detection.
void OnRelease(const void* mu);

// Called by ~Mutex. Drops the pointer-level node so a recycled address
// cannot stitch two unrelated lifetimes into a phantom cycle. The
// rank-level edge set (what the JSON dump reports) is retained.
void OnDestroy(const void* mu);

// Reports go to the installed handler, or to stderr when none is set
// (aborting if POLYV_LOCKDEP_ABORT is set in the environment). Tests
// install a handler to capture report text. Returns the previous
// handler.
using ReportHandler = void (*)(const std::string& report);
ReportHandler SetReportHandler(ReportHandler handler);

// Number of reports issued since start / the last ResetForTest().
int ReportCount();

// Clears all recorded state (graph, reports, per-process dedupe).
// Only for tests; the calling thread must hold no instrumented mutex.
void ResetForTest();

// Serialises the observed graph: rank-level edges with example
// acquisition sites and counts, plus every report issued so far.
std::string DumpJson();

// Writes DumpJson() to $POLYV_LOCKDEP_JSON_DIR/lockdep.<pid>.json.
// Returns false when the variable is unset or the write fails. An
// atexit hook installed on first acquisition calls this automatically,
// so every test binary in a POLYV_LOCKDEP CI run leaves a dump behind.
bool DumpJsonToEnvDir();

}  // namespace lockdep
}  // namespace polyvalue

#endif  // SRC_COMMON_LOCKDEP_H_
