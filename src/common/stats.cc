#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/check.h"

namespace polyvalue {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = new_mean;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::Reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStat::sample_variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::ToString() const {
  std::ostringstream oss;
  oss << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
      << " min=" << min() << " max=" << max();
  return oss.str();
}

void TimeWeightedStat::Observe(double now, double level) {
  if (!started_) {
    started_ = true;
    start_time_ = now;
    last_time_ = now;
    return;
  }
  POLYV_CHECK_GE(now, last_time_);
  weighted_sum_ += level * (now - last_time_);
  last_time_ = now;
}

void TimeWeightedStat::Reset(double now) {
  started_ = true;
  start_time_ = now;
  last_time_ = now;
  weighted_sum_ = 0.0;
}

double TimeWeightedStat::average() const {
  const double span = last_time_ - start_time_;
  if (span <= 0.0) {
    return 0.0;
  }
  return weighted_sum_ / span;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets + 2, 0) {
  POLYV_CHECK_LT(lo, hi);
  POLYV_CHECK_GT(buckets, 0u);
}

void Histogram::Add(double x) {
  ++count_;
  if (x < lo_) {
    ++buckets_.front();
  } else if (x >= hi_) {
    ++buckets_.back();
  } else {
    const size_t idx = 1 + static_cast<size_t>((x - lo_) / width_);
    ++buckets_[std::min(idx, buckets_.size() - 2)];
  }
}

void Histogram::Merge(const Histogram& other) {
  POLYV_CHECK(lo_ == other.lo_ && hi_ == other.hi_ &&
              buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
}

double Histogram::Percentile(double p) const {
  POLYV_CHECK_GE(p, 0.0);
  POLYV_CHECK_LE(p, 100.0);
  if (count_ == 0) {
    return 0.0;
  }
  const double target = p / 100.0 * static_cast<double>(count_);
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= target) {
      if (i == 0) {
        return lo_;
      }
      if (i == buckets_.size() - 1) {
        return hi_;
      }
      return lo_ + (static_cast<double>(i - 1) + 0.5) * width_;
    }
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::ostringstream oss;
  oss << "hist[" << lo_ << "," << hi_ << ") n=" << count_;
  return oss.str();
}

LogHistogram::LogHistogram(Options options)
    : options_(options),
      inv_log_growth_(1.0 / std::log(options.growth)),
      buckets_(options.buckets + 2) {
  POLYV_CHECK_GT(options_.lo, 0.0);
  POLYV_CHECK_GT(options_.growth, 1.0);
  POLYV_CHECK_GT(options_.buckets, 0u);
}

LogHistogram::LogHistogram(const LogHistogram& other)
    : LogHistogram(other.options_) {
  Merge(other);
}

LogHistogram& LogHistogram::operator=(const LogHistogram& other) {
  if (this == &other) {
    return *this;
  }
  options_ = other.options_;
  inv_log_growth_ = other.inv_log_growth_;
  std::vector<std::atomic<uint64_t>> fresh(options_.buckets + 2);
  buckets_.swap(fresh);
  count_.store(0, std::memory_order_relaxed);
  Merge(other);
  return *this;
}

size_t LogHistogram::IndexFor(double x) const {
  if (!(x >= options_.lo)) {  // also catches NaN: count it as underflow
    return 0;
  }
  const double raw = std::log(x / options_.lo) * inv_log_growth_;
  const size_t idx = 1 + static_cast<size_t>(raw);
  return std::min(idx, buckets_.size() - 1);
}

void LogHistogram::Add(double x) {
  buckets_[IndexFor(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

void LogHistogram::Merge(const LogHistogram& other) {
  POLYV_CHECK(options_.lo == other.options_.lo &&
              options_.growth == other.options_.growth &&
              buckets_.size() == other.buckets_.size());
  uint64_t merged = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    buckets_[i].fetch_add(n, std::memory_order_relaxed);
    merged += n;
  }
  count_.fetch_add(merged, std::memory_order_relaxed);
}

uint64_t LogHistogram::underflow() const {
  return buckets_.front().load(std::memory_order_relaxed);
}

uint64_t LogHistogram::overflow() const {
  return buckets_.back().load(std::memory_order_relaxed);
}

uint64_t LogHistogram::bucket(size_t i) const {
  return buckets_[i + 1].load(std::memory_order_relaxed);
}

double LogHistogram::bucket_lower(size_t i) const {
  return options_.lo * std::pow(options_.growth, static_cast<double>(i));
}

double LogHistogram::bucket_upper(size_t i) const {
  return options_.lo * std::pow(options_.growth, static_cast<double>(i + 1));
}

double LogHistogram::Percentile(double p) const {
  POLYV_CHECK_GE(p, 0.0);
  POLYV_CHECK_LE(p, 100.0);
  // Snapshot first: racing writers must not make the cumulative walk
  // overshoot the total it was computed against.
  std::vector<uint64_t> counts(buckets_.size());
  uint64_t total = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) {
    return 0.0;
  }
  const double target = p / 100.0 * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += static_cast<double>(counts[i]);
    if (cumulative >= target) {
      if (i == 0) {
        return options_.lo;  // underflow: everything below lo reports lo
      }
      // Overflow reports the top finite edge (never invents a value
      // beyond the histogram's range).
      return bucket_upper(std::min(i - 1, options_.buckets - 1));
    }
  }
  return bucket_upper(options_.buckets - 1);
}

std::string LogHistogram::ToString() const {
  std::ostringstream oss;
  oss << "loghist[lo=" << options_.lo << " g=" << options_.growth
      << " n=" << count() << " p50=" << Percentile(50)
      << " p99=" << Percentile(99) << "]";
  return oss.str();
}

}  // namespace polyvalue
