// Statistics accumulators used by the simulators and benches.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace polyvalue {

// Welford single-pass mean/variance with min/max tracking.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;      // population variance
  double sample_variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  std::string ToString() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// A time-weighted average of a step function: the §4 simulation needs the
// average *number* of polyvalues over time, which means integrating the
// count against elapsed time, not averaging per-event samples.
class TimeWeightedStat {
 public:
  // Records that the tracked quantity had value `level` from the previous
  // observation time up to `now`.
  void Observe(double now, double level);
  void Reset(double now);

  double average() const;
  double elapsed() const { return last_time_ - start_time_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double weighted_sum_ = 0.0;
};

// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  // Adds `other`'s counts into this histogram; the shapes (lo, hi,
  // bucket count) must match.
  void Merge(const Histogram& other);
  uint64_t count() const { return count_; }
  double Percentile(double p) const;  // p in [0, 100]
  std::string ToString() const;

  // Bucket introspection (metrics export).
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t bucket_count() const { return buckets_.size() - 2; }
  uint64_t underflow() const { return buckets_.front(); }
  uint64_t overflow() const { return buckets_.back(); }
  uint64_t bucket(size_t i) const { return buckets_[i + 1]; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> buckets_;  // [underflow, b0..bn-1, overflow]
  uint64_t count_ = 0;
};

// Log-bucketed histogram for latency distributions: bucket i spans
// [lo * growth^i, lo * growth^(i+1)), so relative resolution is constant
// across six decades instead of the linear Histogram's fixed width.
//
// Recording is lock-free (relaxed atomic increments) so concurrent
// request-completion paths — the serving front door's latency recorder —
// never serialize on a stats mutex. Reads (Percentile, Merge, copies)
// take a weakly consistent snapshot: each bucket load is atomic, but a
// reader racing writers may see counts from slightly different moments.
// That is the standard contract for monitoring histograms; exact counts
// only matter after the workload quiesces, where it is exact.
//
// Percentile(p) returns the UPPER edge of the bucket holding the p-th
// sample, so a reported quantile never under-states the latency and is
// within one growth factor of the true value (stats_test pins the
// bound). Underflow reports lo; overflow reports the top finite edge.
class LogHistogram {
 public:
  struct Options {
    double lo = 1e-6;      // smallest resolvable value (1us)
    double growth = 1.25;  // per-bucket geometric growth
    size_t buckets = 96;   // 1.25^96 * 1us ~= 2000s of range
  };

  LogHistogram() : LogHistogram(Options{}) {}
  explicit LogHistogram(Options options);

  // Deep copies take a weakly consistent snapshot of the counts.
  LogHistogram(const LogHistogram& other);
  LogHistogram& operator=(const LogHistogram& other);

  // Thread-safe, lock-free.
  void Add(double x);

  // Adds `other`'s counts into this histogram; shapes must match.
  void Merge(const LogHistogram& other);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double Percentile(double p) const;  // p in [0, 100]
  std::string ToString() const;

  // Shape and bucket introspection.
  double lo() const { return options_.lo; }
  double growth() const { return options_.growth; }
  size_t bucket_count() const { return options_.buckets; }
  uint64_t underflow() const;
  uint64_t overflow() const;
  uint64_t bucket(size_t i) const;
  double bucket_lower(size_t i) const;
  double bucket_upper(size_t i) const;

 private:
  size_t IndexFor(double x) const;  // into buckets_ (0 = underflow)

  Options options_;
  double inv_log_growth_ = 0.0;
  // [underflow, b0..bn-1, overflow]
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
};

}  // namespace polyvalue

#endif  // SRC_COMMON_STATS_H_
