// Lightweight Status / Result error-handling primitives.
//
// The library does not use exceptions on its hot paths: protocol state
// machines, storage operations and polyvalue algebra all report failures
// through Status / Result<T>. Exceptions are reserved for programming
// errors (precondition violations) surfaced via CHECK-style macros.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace polyvalue {

// Canonical error space, loosely modelled on absl::StatusCode but trimmed
// to what a distributed transaction engine needs.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // item / site / transaction does not exist
  kAlreadyExists = 3,     // duplicate registration
  kFailedPrecondition = 4,// operation illegal in the current state
  kAborted = 5,           // transaction aborted (conflict or vote-no)
  kUnavailable = 6,       // site down / link partitioned; retryable
  kTimedOut = 7,          // protocol timer expired
  kUncertain = 8,         // result depends on an unresolved transaction
  kDataLoss = 9,          // WAL corruption detected on recovery
  kInternal = 10,         // invariant violation (bug)
  kResourceExhausted = 11,// load shed: admission control refused entry
  kDeadlineExceeded = 12, // the caller's deadline budget ran out
};

// Human-readable name of a StatusCode ("OK", "ABORTED", ...).
const char* StatusCodeName(StatusCode code);

// A Status is either OK (cheap, no allocation) or an error code plus a
// context message. [[nodiscard]]: silently dropping a Status hides
// failures (a WAL append that didn't happen, a send that was refused) —
// callers must check it or cast to void with a reason.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "ABORTED: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, mirroring absl.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status AbortedError(std::string message);
Status UnavailableError(std::string message);
Status TimedOutError(std::string message);
Status UncertainError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);

// Result<T> holds either a value or an error Status. Accessing the value
// of an error Result aborts the process (it is a programming error).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : payload_(std::move(value)) {}      // NOLINT: implicit by design
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(payload_);
  }

  T& value() & { return std::get<T>(payload_); }
  const T& value() const& { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    if (ok()) {
      return std::get<T>(payload_);
    }
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

// Propagate-on-error helpers (statement-expression free, portable).
#define POLYV_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::polyvalue::Status _polyv_status = (expr); \
    if (!_polyv_status.ok()) {                 \
      return _polyv_status;                    \
    }                                          \
  } while (0)

#define POLYV_CONCAT_INNER(a, b) a##b
#define POLYV_CONCAT(a, b) POLYV_CONCAT_INNER(a, b)

#define POLYV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define POLYV_ASSIGN_OR_RETURN(lhs, rexpr) \
  POLYV_ASSIGN_OR_RETURN_IMPL(POLYV_CONCAT(_polyv_result_, __LINE__), lhs, rexpr)

}  // namespace polyvalue

#endif  // SRC_COMMON_STATUS_H_
