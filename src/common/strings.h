// Small string helpers used across the library.
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace polyvalue {

// Concatenates stream-formattable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string();
  } else {
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
  }
}

// Joins elements with a separator, using operator<< for formatting.
template <typename Container>
std::string StrJoin(const Container& container, const std::string& sep) {
  std::ostringstream oss;
  bool first = true;
  for (const auto& element : container) {
    if (!first) {
      oss << sep;
    }
    first = false;
    oss << element;
  }
  return oss.str();
}

// Splits on a single character; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& text, char sep);

// True if `text` begins with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

// Formats a double trimming trailing zeros ("2.00" -> "2", "1.10" -> "1.1").
std::string FormatDouble(double value, int max_decimals = 6);

}  // namespace polyvalue

#endif  // SRC_COMMON_STRINGS_H_
