#include "src/common/strings.h"

#include <cstdio>

namespace polyvalue {

std::vector<std::string> StrSplit(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string FormatDouble(double value, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') {
      s.pop_back();
    }
    if (!s.empty() && s.back() == '.') {
      s.pop_back();
    }
  }
  return s;
}

}  // namespace polyvalue
