// CHECK-style invariant macros.
//
// These abort the process with a diagnostic when an internal invariant is
// violated. They are used for programming errors only; anticipated runtime
// failures (site down, transaction aborted, ...) travel through Status.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace polyvalue {

[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& message);

}  // namespace polyvalue

#define POLYV_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::polyvalue::CheckFailure(__FILE__, __LINE__, #cond, "");        \
    }                                                                  \
  } while (0)

#define POLYV_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream _polyv_oss;                                   \
      _polyv_oss << msg; /* NOLINT */                                  \
      ::polyvalue::CheckFailure(__FILE__, __LINE__, #cond,             \
                                _polyv_oss.str());                     \
    }                                                                  \
  } while (0)

#define POLYV_CHECK_EQ(a, b) POLYV_CHECK_MSG((a) == (b), "expected equality")
#define POLYV_CHECK_NE(a, b) POLYV_CHECK_MSG((a) != (b), "expected inequality")
#define POLYV_CHECK_LT(a, b) POLYV_CHECK_MSG((a) < (b), "expected <")
#define POLYV_CHECK_LE(a, b) POLYV_CHECK_MSG((a) <= (b), "expected <=")
#define POLYV_CHECK_GT(a, b) POLYV_CHECK_MSG((a) > (b), "expected >")
#define POLYV_CHECK_GE(a, b) POLYV_CHECK_MSG((a) >= (b), "expected >=")

#endif  // SRC_COMMON_CHECK_H_
