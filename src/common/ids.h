// Strongly typed identifiers shared across the library.
//
// The paper's vocabulary: transactions are named by *transaction
// identifiers* (the variables of polyvalue conditions), data lives in
// *items*, items live at *sites*.
#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace polyvalue {

// CRTP strong integer wrapper: distinct identifier types do not convert
// into each other.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() : value_(kInvalid) {}
  constexpr explicit StrongId(uint64_t value) : value_(value) {}

  constexpr uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) {
    return a.value_ >= b.value_;
  }

  static constexpr uint64_t kInvalid = ~0ULL;

 private:
  uint64_t value_;
};

struct TxnIdTag {};
struct SiteIdTag {};

// Identifier of one transaction; the boolean variables in polyvalue
// conditions range over these.
using TxnId = StrongId<TxnIdTag>;

// Identifier of one site (one autonomous storage node).
using SiteId = StrongId<SiteIdTag>;

// Items are addressed by string keys ("accounts/alice"); cheap and clear
// in examples and tests. The store interns them internally.
using ItemKey = std::string;

// Transaction ids are allocated as (coordinator site << kTxnSiteShift) |
// sequence, so any site can route an outcome inquiry from the id alone.
// The formatter decodes that for readability: "T3.7" = 7th transaction
// coordinated by site 3.
inline constexpr int kTxnSiteShift = 40;

inline std::ostream& operator<<(std::ostream& os, TxnId id) {
  if (!id.valid()) {
    return os << "T?";
  }
  const uint64_t site = id.value() >> kTxnSiteShift;
  const uint64_t seq = id.value() & ((1ULL << kTxnSiteShift) - 1);
  if (site != 0) {
    return os << "T" << site << "." << seq;
  }
  return os << "T" << id.value();
}

inline std::ostream& operator<<(std::ostream& os, SiteId id) {
  if (!id.valid()) {
    return os << "S?";
  }
  return os << "S" << id.value();
}

inline std::string ToString(TxnId id) {
  if (!id.valid()) {
    return "T?";
  }
  const uint64_t site = id.value() >> kTxnSiteShift;
  const uint64_t seq = id.value() & ((1ULL << kTxnSiteShift) - 1);
  if (site != 0) {
    return "T" + std::to_string(site) + "." + std::to_string(seq);
  }
  return "T" + std::to_string(id.value());
}

inline std::string ToString(SiteId id) {
  return id.valid() ? "S" + std::to_string(id.value()) : "S?";
}

}  // namespace polyvalue

namespace std {

template <>
struct hash<polyvalue::TxnId> {
  size_t operator()(polyvalue::TxnId id) const noexcept {
    return std::hash<uint64_t>()(id.value());
  }
};

template <>
struct hash<polyvalue::SiteId> {
  size_t operator()(polyvalue::SiteId id) const noexcept {
    return std::hash<uint64_t>()(id.value());
  }
};

}  // namespace std

#endif  // SRC_COMMON_IDS_H_
