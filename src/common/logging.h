// Minimal leveled logger.
//
// Sites and protocol state machines log through this sink; tests can
// capture output or silence it entirely. Thread-safe.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string>

#include "src/common/thread_annotations.h"

namespace polyvalue {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* LogLevelName(LogLevel level);

// Process-wide logging configuration.
class Logger {
 public:
  static Logger& Get();

  // level_ is read on every POLYV_LOG call site, from any thread, with
  // no lock — it must be atomic (relaxed: a torn-free read is all the
  // filter needs).
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  // Writes one formatted line; no-op when below the current level.
  void Write(LogLevel level, const std::string& message);

  // Redirect output into an internal buffer (for tests). Passing false
  // restores stderr output and returns the captured text.
  void set_capture(bool capture);
  std::string TakeCaptured();

 private:
  Logger() = default;

  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Mutex mu_ POLYV_MUTEX_RANK(kLogger);
  bool capture_ GUARDED_BY(mu_) = false;
  std::string captured_ GUARDED_BY(mu_);
};

namespace internal {

// Builds a log line with stream syntax then hands it to the Logger on
// destruction.
class LogLine {
 public:
  LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::Get().Write(level_, oss_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

}  // namespace internal

}  // namespace polyvalue

#define POLYV_LOG(level_enum)                                            \
  if (static_cast<int>(::polyvalue::Logger::Get().level()) <=            \
      static_cast<int>(::polyvalue::LogLevel::level_enum))               \
  ::polyvalue::internal::LogLine(::polyvalue::LogLevel::level_enum)

#define POLYV_TRACE POLYV_LOG(kTrace)
#define POLYV_DEBUG POLYV_LOG(kDebug)
#define POLYV_INFO POLYV_LOG(kInfo)
#define POLYV_WARN POLYV_LOG(kWarn)
#define POLYV_ERROR POLYV_LOG(kError)

#endif  // SRC_COMMON_LOGGING_H_
