// Client-side retry helper.
//
// The engine resolves lock conflicts by immediate abort (deadlock-free),
// so real clients retry. RetryingClient wraps a cluster with jittered
// backoff and a fresh TxnSpec per attempt (specs are move-consumed by
// Submit).
//
// Backoff uses DECORRELATED JITTER by default (Brooker, "Exponential
// Backoff and Jitter"): each sleep is uniform(base, 3 * previous sleep),
// capped. Deterministic exponential backoff — the old default — makes
// every client that aborted in the same conflict burst wake at the same
// instant and collide again (retry herding); jitter spreads the herd.
// retry_test asserts the dispersion.
#ifndef SRC_SYSTEM_RETRY_H_
#define SRC_SYSTEM_RETRY_H_

#include <functional>
#include <optional>

#include "src/common/rng.h"
#include "src/system/cluster.h"

namespace polyvalue {

struct RetryPolicy {
  int max_attempts = 8;
  double initial_backoff = 0.02;  // seconds; jitter's lower bound
  double backoff_multiplier = 2.0;  // only used when jitter is disabled
  double max_backoff = 0.5;
  // Decorrelated jitter (default). Disable to get the legacy
  // deterministic exponential schedule (useful in tests that pin exact
  // virtual-time schedules).
  bool decorrelated_jitter = true;
  // Seed for the jitter stream, so sim runs stay reproducible. Distinct
  // clients should use distinct seeds (identical seeds re-synchronize
  // the herd). 0 picks the library default.
  uint64_t jitter_seed = 0;
};

// One decorrelated-jitter step: uniform(base, 3 * prev), capped at
// `cap` and floored at `base`. Exposed for the serving front door
// (src/svc/) and for tests.
double DecorrelatedJitterBackoff(Rng* rng, double base, double cap,
                                 double prev);

// The backoff to sleep after attempt `attempt` (0-based), given the
// previous sleep. Applies `policy`'s jitter mode.
double NextBackoff(const RetryPolicy& policy, Rng* rng, double prev);

// Runs `make_spec()` against the SimCluster until it commits (or is
// read-only), retrying aborts with backoff in virtual time. Returns the
// final result, or nullopt when every attempt failed / timed out.
std::optional<TxnResult> RunWithRetries(
    SimCluster* cluster, size_t coordinator_index,
    const std::function<TxnSpec()>& make_spec,
    const RetryPolicy& policy = {});

// Blocking variant for the threaded cluster (wall-clock backoff).
std::optional<TxnResult> RunWithRetries(
    ThreadCluster* cluster, size_t coordinator_index,
    const std::function<TxnSpec()>& make_spec,
    const RetryPolicy& policy = {});

}  // namespace polyvalue

#endif  // SRC_SYSTEM_RETRY_H_
