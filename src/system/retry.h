// Client-side retry helper.
//
// The engine resolves lock conflicts by immediate abort (deadlock-free),
// so real clients retry. RetryingClient wraps a cluster with bounded
// exponential backoff and a fresh TxnSpec per attempt (specs are
// move-consumed by Submit).
#ifndef SRC_SYSTEM_RETRY_H_
#define SRC_SYSTEM_RETRY_H_

#include <functional>
#include <optional>

#include "src/system/cluster.h"

namespace polyvalue {

struct RetryPolicy {
  int max_attempts = 8;
  double initial_backoff = 0.02;  // seconds
  double backoff_multiplier = 2.0;
  double max_backoff = 0.5;
};

// Runs `make_spec()` against the SimCluster until it commits (or is
// read-only), retrying aborts with backoff in virtual time. Returns the
// final result, or nullopt when every attempt failed / timed out.
std::optional<TxnResult> RunWithRetries(
    SimCluster* cluster, size_t coordinator_index,
    const std::function<TxnSpec()>& make_spec,
    const RetryPolicy& policy = {});

// Blocking variant for the threaded cluster (wall-clock backoff).
std::optional<TxnResult> RunWithRetries(
    ThreadCluster* cluster, size_t coordinator_index,
    const std::function<TxnSpec()>& make_spec,
    const RetryPolicy& policy = {});

}  // namespace polyvalue

#endif  // SRC_SYSTEM_RETRY_H_
