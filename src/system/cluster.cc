#include "src/system/cluster.h"

#include "src/common/check.h"
#include "src/common/strings.h"

namespace polyvalue {

SimCluster::SimCluster(Options options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.engine.cluster_sites == 0) {
    // The Paxos leg needs the acceptor-set size; default to "every site
    // in this cluster is an acceptor" (2F+1 = N).
    options_.engine.cluster_sites = options_.site_count;
  }
  faults_.SetDelayRange(options_.min_delay, options_.max_delay);
  transport_ = std::make_unique<SimTransport>(&sim_, &faults_, &rng_);
  transport_->set_trace(options_.trace);
  endpoint_ = transport_.get();
  if (options_.enable_batching) {
    BatchingTransport::Options batching = options_.batching;
    // No flusher thread in the simulator: flushes are simulator events,
    // armed one-shot whenever a link queue goes non-empty. Every flush
    // happens at a deterministic virtual time, so the run is still a
    // pure function of its seed.
    batching.auto_flush = false;
    batching_ =
        std::make_unique<BatchingTransport>(transport_.get(), batching);
    const double window = batching.window_seconds;
    batching_->set_flush_hook([this, window] {
      sim_.After(window, [this] { batching_->FlushAll(); });
    });
    endpoint_ = batching_.get();
  }
  scheduler_ = std::make_unique<SimScheduler>(&sim_);
  sites_.reserve(options_.site_count);
  for (size_t i = 0; i < options_.site_count; ++i) {
    Site::Options site_options;
    site_options.engine = options_.engine;
    site_options.default_factory = options_.default_factory;
    site_options.trace = options_.trace;
    site_options.store_shards = options_.store_shards;
    if (!options_.wal_dir.empty()) {
      site_options.wal_path = StrCat(options_.wal_dir, "/site", i, ".wal");
      site_options.wal = options_.wal;
    }
    auto site = std::make_unique<Site>(site_id(i), endpoint_,
                                       scheduler_.get(), site_options);
    POLYV_CHECK(site->Start().ok());
    sites_.push_back(std::move(site));
  }
}

void SimCluster::Load(size_t site_index, const ItemKey& key, Value value) {
  sites_[site_index]->Load(key, std::move(value));
}

TxnId SimCluster::Submit(size_t coordinator_index, TxnSpec spec,
                         TxnCallback callback) {
  return sites_[coordinator_index]->Submit(std::move(spec),
                                           std::move(callback));
}

std::optional<TxnResult> SimCluster::SubmitAndRun(size_t coordinator_index,
                                                  TxnSpec spec,
                                                  double max_seconds) {
  std::optional<TxnResult> result;
  Submit(coordinator_index, std::move(spec),
         [&result](const TxnResult& r) { result = r; });
  const double deadline = sim_.now() + max_seconds;
  while (!result.has_value() && sim_.now() < deadline) {
    if (!sim_.Step()) {
      break;
    }
  }
  return result;
}

void SimCluster::RunFor(double seconds) { sim_.RunUntil(sim_.now() + seconds); }

void SimCluster::CrashSite(size_t index) {
  sites_[index]->Crash(&faults_);
}

void SimCluster::RecoverSite(size_t index) {
  sites_[index]->Recover(&faults_);
}

size_t SimCluster::TotalUncertainItems() const {
  size_t total = 0;
  for (const auto& site : sites_) {
    total += site->store().UncertainCount();
  }
  return total;
}

EngineMetrics SimCluster::TotalMetrics() const {
  EngineMetrics total;
  for (const auto& site : sites_) {
    total.Accumulate(site->GetStats().engine);
  }
  return total;
}

namespace {

// Per-site and cluster-wide WAL group-commit counters. The
// records-per-batch ratio is the one to watch: 1.0 means group commit
// never coalesced anything.
void ExportWalMetrics(const std::vector<std::unique_ptr<Site>>& sites,
                      MetricsRegistry* registry) {
  uint64_t batches = 0;
  uint64_t records = 0;
  for (size_t i = 0; i < sites.size(); ++i) {
    const Wal* wal = sites[i]->wal();
    if (wal == nullptr) {
      continue;
    }
    registry->SetCounter(StrCat("site", i, ".wal.batches"),
                         wal->batches_flushed());
    registry->SetCounter(StrCat("site", i, ".wal.records"),
                         wal->records_flushed());
    batches += wal->batches_flushed();
    records += wal->records_flushed();
  }
  registry->SetCounter("wal.batches", batches);
  registry->SetCounter("wal.records", records);
  registry->Gauge("wal.records_per_batch",
                  batches == 0
                      ? 0.0
                      : static_cast<double>(records) /
                            static_cast<double>(batches));
}

void ExportBatchingMetrics(const BatchingTransport* batching,
                           uint64_t wire_batched_frames,
                           MetricsRegistry* registry) {
  registry->SetCounter("net.batched_frames", wire_batched_frames);
  if (batching != nullptr) {
    registry->SetCounter("net.packets_coalesced",
                         batching->packets_coalesced());
  }
}

}  // namespace

void SimCluster::ExportMetrics(MetricsRegistry* registry) const {
  EngineMetrics total;
  for (size_t i = 0; i < sites_.size(); ++i) {
    const EngineMetrics m = sites_[i]->GetStats().engine;
    m.ExportTo(registry, StrCat("site", i, "."));
    registry->SetCounter(StrCat("site", i, ".uncertain_items"),
                         sites_[i]->store().UncertainCount());
    total.Accumulate(m);
  }
  total.ExportTo(registry, "cluster.");
  registry->SetCounter("cluster.uncertain_items", TotalUncertainItems());
  registry->SetCounter("cluster.packets_sent", transport_->packets_sent());
  registry->SetCounter("cluster.packets_delivered",
                       transport_->packets_delivered());
  registry->SetCounter("cluster.packets_dropped",
                       transport_->packets_dropped());
  registry->SetCounter("cluster.bytes_sent", transport_->bytes_sent());
  registry->Gauge("cluster.sim_time_seconds", sim_.now());
  ExportWalMetrics(sites_, registry);
  ExportBatchingMetrics(batching_.get(), transport_->batched_frames(),
                        registry);
}

ThreadCluster::ThreadCluster(Options options)
    : options_(std::move(options)) {
  if (options_.engine.cluster_sites == 0) {
    options_.engine.cluster_sites = options_.site_count;
  }
  if (options_.transport != nullptr) {
    transport_ = options_.transport;
  } else {
    owned_transport_ =
        std::make_unique<MemTransport>(options_.faults, options_.seed);
    transport_ = owned_transport_.get();
  }
  endpoint_ = transport_;
  if (options_.enable_batching) {
    batching_ =
        std::make_unique<BatchingTransport>(transport_, options_.batching);
    endpoint_ = batching_.get();
  }
  sites_.reserve(options_.site_count);
  for (size_t i = 0; i < options_.site_count; ++i) {
    Site::Options site_options;
    site_options.engine = options_.engine;
    site_options.default_factory = options_.default_factory;
    site_options.trace = options_.trace;
    site_options.store_shards = options_.store_shards;
    if (!options_.wal_dir.empty()) {
      site_options.wal_path = StrCat(options_.wal_dir, "/site", i, ".wal");
      site_options.wal = options_.wal;
    }
    auto site = std::make_unique<Site>(site_id(i), endpoint_,
                                       &scheduler_, site_options);
    POLYV_CHECK(site->Start().ok());
    sites_.push_back(std::move(site));
  }
}

ThreadCluster::~ThreadCluster() {
  // Sites unregister in their destructors; transports join their threads.
  sites_.clear();
  // The decorator must die before the inner transport it wraps.
  batching_.reset();
}

void ThreadCluster::Load(size_t site_index, const ItemKey& key,
                         Value value) {
  sites_[site_index]->Load(key, std::move(value));
}

TxnId ThreadCluster::Submit(size_t coordinator_index, TxnSpec spec,
                            TxnCallback callback) {
  return sites_[coordinator_index]->Submit(std::move(spec),
                                           std::move(callback));
}

std::optional<TxnResult> ThreadCluster::SubmitAndWait(
    size_t coordinator_index, TxnSpec spec, double timeout_seconds) {
  // The callback may fire on an engine thread after a timeout has already
  // returned control to the caller, so the wait state must be shared, not
  // stack-owned; notifying under the lock keeps the cv alive until the
  // waiter can actually proceed.
  struct WaitState {
    Mutex mu POLYV_MUTEX_RANK(kClientWait);
    CondVar cv;
    std::optional<TxnResult> result GUARDED_BY(mu);
  };
  auto state = std::make_shared<WaitState>();
  Submit(coordinator_index, std::move(spec), [state](const TxnResult& r) {
    MutexLock lock(&state->mu);
    state->result = r;
    state->cv.NotifyAll();
  });
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<int64_t>(timeout_seconds * 1e6));
  MutexLock lock(&state->mu);
  while (!state->result.has_value()) {
    if (!state->cv.WaitUntil(&state->mu, deadline)) {
      break;  // timed out; the callback may still fire later
    }
  }
  return state->result;
}

EngineMetrics ThreadCluster::TotalMetrics() const {
  EngineMetrics total;
  for (const auto& site : sites_) {
    total.Accumulate(site->GetStats().engine);
  }
  return total;
}

void ThreadCluster::ExportMetrics(MetricsRegistry* registry) const {
  EngineMetrics total;
  for (size_t i = 0; i < sites_.size(); ++i) {
    const EngineMetrics m = sites_[i]->GetStats().engine;
    m.ExportTo(registry, StrCat("site", i, "."));
    registry->SetCounter(StrCat("site", i, ".uncertain_items"),
                         sites_[i]->store().UncertainCount());
    total.Accumulate(m);
  }
  total.ExportTo(registry, "cluster.");
  if (owned_transport_ != nullptr) {
    registry->SetCounter("cluster.packets_sent",
                         owned_transport_->packets_sent());
    registry->SetCounter("cluster.packets_delivered",
                         owned_transport_->packets_delivered());
  }
  ExportWalMetrics(sites_, registry);
  ExportBatchingMetrics(
      batching_.get(),
      owned_transport_ != nullptr ? owned_transport_->batched_frames()
      : batching_ != nullptr      ? batching_->batched_frames()
                                  : 0,
      registry);
}

}  // namespace polyvalue
