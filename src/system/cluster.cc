#include "src/system/cluster.h"

#include "src/common/check.h"
#include "src/common/strings.h"

namespace polyvalue {

SimCluster::SimCluster(Options options)
    : options_(std::move(options)), rng_(options_.seed) {
  faults_.SetDelayRange(options_.min_delay, options_.max_delay);
  transport_ = std::make_unique<SimTransport>(&sim_, &faults_, &rng_);
  transport_->set_trace(options_.trace);
  scheduler_ = std::make_unique<SimScheduler>(&sim_);
  sites_.reserve(options_.site_count);
  for (size_t i = 0; i < options_.site_count; ++i) {
    Site::Options site_options;
    site_options.engine = options_.engine;
    site_options.default_factory = options_.default_factory;
    site_options.trace = options_.trace;
    auto site = std::make_unique<Site>(site_id(i), transport_.get(),
                                       scheduler_.get(), site_options);
    POLYV_CHECK(site->Start().ok());
    sites_.push_back(std::move(site));
  }
}

void SimCluster::Load(size_t site_index, const ItemKey& key, Value value) {
  sites_[site_index]->Load(key, std::move(value));
}

TxnId SimCluster::Submit(size_t coordinator_index, TxnSpec spec,
                         TxnCallback callback) {
  return sites_[coordinator_index]->Submit(std::move(spec),
                                           std::move(callback));
}

std::optional<TxnResult> SimCluster::SubmitAndRun(size_t coordinator_index,
                                                  TxnSpec spec,
                                                  double max_seconds) {
  std::optional<TxnResult> result;
  Submit(coordinator_index, std::move(spec),
         [&result](const TxnResult& r) { result = r; });
  const double deadline = sim_.now() + max_seconds;
  while (!result.has_value() && sim_.now() < deadline) {
    if (!sim_.Step()) {
      break;
    }
  }
  return result;
}

void SimCluster::RunFor(double seconds) { sim_.RunUntil(sim_.now() + seconds); }

void SimCluster::CrashSite(size_t index) {
  sites_[index]->Crash(&faults_);
}

void SimCluster::RecoverSite(size_t index) {
  sites_[index]->Recover(&faults_);
}

size_t SimCluster::TotalUncertainItems() const {
  size_t total = 0;
  for (const auto& site : sites_) {
    total += site->store().UncertainCount();
  }
  return total;
}

EngineMetrics SimCluster::TotalMetrics() const {
  EngineMetrics total;
  for (const auto& site : sites_) {
    total.Accumulate(site->engine().metrics());
  }
  return total;
}

void SimCluster::ExportMetrics(MetricsRegistry* registry) const {
  EngineMetrics total;
  for (size_t i = 0; i < sites_.size(); ++i) {
    const EngineMetrics m = sites_[i]->engine().metrics();
    m.ExportTo(registry, StrCat("site", i, "."));
    registry->SetCounter(StrCat("site", i, ".uncertain_items"),
                         sites_[i]->store().UncertainCount());
    total.Accumulate(m);
  }
  total.ExportTo(registry, "cluster.");
  registry->SetCounter("cluster.uncertain_items", TotalUncertainItems());
  registry->SetCounter("cluster.packets_sent", transport_->packets_sent());
  registry->SetCounter("cluster.packets_delivered",
                       transport_->packets_delivered());
  registry->SetCounter("cluster.packets_dropped",
                       transport_->packets_dropped());
  registry->SetCounter("cluster.bytes_sent", transport_->bytes_sent());
  registry->Gauge("cluster.sim_time_seconds", sim_.now());
}

ThreadCluster::ThreadCluster(Options options)
    : options_(std::move(options)) {
  if (options_.transport != nullptr) {
    transport_ = options_.transport;
  } else {
    owned_transport_ =
        std::make_unique<MemTransport>(options_.faults, options_.seed);
    transport_ = owned_transport_.get();
  }
  sites_.reserve(options_.site_count);
  for (size_t i = 0; i < options_.site_count; ++i) {
    Site::Options site_options;
    site_options.engine = options_.engine;
    site_options.default_factory = options_.default_factory;
    site_options.trace = options_.trace;
    auto site = std::make_unique<Site>(site_id(i), transport_,
                                       &scheduler_, site_options);
    POLYV_CHECK(site->Start().ok());
    sites_.push_back(std::move(site));
  }
}

ThreadCluster::~ThreadCluster() {
  // Sites unregister in their destructors; transports join their threads.
  sites_.clear();
}

void ThreadCluster::Load(size_t site_index, const ItemKey& key,
                         Value value) {
  sites_[site_index]->Load(key, std::move(value));
}

TxnId ThreadCluster::Submit(size_t coordinator_index, TxnSpec spec,
                            TxnCallback callback) {
  return sites_[coordinator_index]->Submit(std::move(spec),
                                           std::move(callback));
}

std::optional<TxnResult> ThreadCluster::SubmitAndWait(
    size_t coordinator_index, TxnSpec spec, double timeout_seconds) {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<TxnResult> result;
  Submit(coordinator_index, std::move(spec), [&](const TxnResult& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result = r;
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock,
              std::chrono::microseconds(
                  static_cast<int64_t>(timeout_seconds * 1e6)),
              [&result] { return result.has_value(); });
  return result;
}

EngineMetrics ThreadCluster::TotalMetrics() const {
  EngineMetrics total;
  for (const auto& site : sites_) {
    total.Accumulate(site->engine().metrics());
  }
  return total;
}

void ThreadCluster::ExportMetrics(MetricsRegistry* registry) const {
  EngineMetrics total;
  for (size_t i = 0; i < sites_.size(); ++i) {
    const EngineMetrics m = sites_[i]->engine().metrics();
    m.ExportTo(registry, StrCat("site", i, "."));
    registry->SetCounter(StrCat("site", i, ".uncertain_items"),
                         sites_[i]->store().UncertainCount());
    total.Accumulate(m);
  }
  total.ExportTo(registry, "cluster.");
}

}  // namespace polyvalue
