// Cluster assemblies: N sites wired to a transport, with failure
// injection and synchronous-submit conveniences.
//
// SimCluster — deterministic: sites share one discrete-event simulator
//              and a SimTransport; a run is reproducible from its seed.
// ThreadCluster — real concurrency: MemTransport (or any Transport) plus
//              a wall-clock ThreadScheduler; used by stress/integration
//              tests and the TCP demo.
#ifndef SRC_SYSTEM_CLUSTER_H_
#define SRC_SYSTEM_CLUSTER_H_

#include <memory>
#include <optional>
#include <vector>

#include <string>

#include "src/event/simulator.h"
#include "src/net/batching_transport.h"
#include "src/net/mem_transport.h"
#include "src/net/sim_transport.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/system/site.h"

namespace polyvalue {

class SimCluster {
 public:
  struct Options {
    size_t site_count = 3;
    EngineConfig engine;
    uint64_t seed = 42;
    ItemStore::DefaultFactory default_factory;
    // Network latency range (seconds).
    double min_delay = 0.001;
    double max_delay = 0.003;
    // Optional protocol trace sink, shared by every site's engine and
    // the transport. Null (the default) disables tracing at zero cost.
    TraceSink* trace = nullptr;
    // When non-empty, site i logs to "<wal_dir>/site<i>.wal" with the
    // `wal` knobs below (group commit etc.); empty disables durability,
    // as before.
    std::string wal_dir;
    Wal::Options wal;
    // Message batching. Off by default — the golden trace and every
    // seeded run are byte-identical to the unbatched schedule. When on,
    // a BatchingTransport (auto_flush = false) fronts the SimTransport
    // and flush ticks are scheduled on the SIMULATOR clock
    // (`batching.window_seconds` after a link queue first fills), so
    // runs stay deterministic per seed.
    bool enable_batching = false;
    BatchingTransport::Options batching;
    size_t store_shards = ItemStore::kDefaultShards;
  };

  explicit SimCluster(Options options);

  size_t size() const { return sites_.size(); }
  Site& site(size_t index) { return *sites_[index]; }
  SiteId site_id(size_t index) const { return SiteId(index + 1); }

  Simulator& sim() { return sim_; }
  FaultPlan& faults() { return faults_; }
  SimTransport& transport() { return *transport_; }
  // Null unless enable_batching.
  BatchingTransport* batching() { return batching_.get(); }
  Rng& rng() { return rng_; }

  // Seeds an item at the site that owns it.
  void Load(size_t site_index, const ItemKey& key, Value value);

  // Submits at `coordinator_index`; the callback fires during sim steps.
  TxnId Submit(size_t coordinator_index, TxnSpec spec, TxnCallback callback);

  // Submits and runs the simulator until the callback fires (or
  // `max_seconds` of virtual time pass — then returns nullopt).
  std::optional<TxnResult> SubmitAndRun(size_t coordinator_index,
                                        TxnSpec spec,
                                        double max_seconds = 60.0);

  // Advances virtual time.
  void RunFor(double seconds);
  void RunAll() { sim_.RunAll(); }

  void CrashSite(size_t index);
  void RecoverSite(size_t index);

  // Total uncertain items across all sites — the cluster-wide P(t).
  size_t TotalUncertainItems() const;

  // Aggregated engine metrics across sites.
  EngineMetrics TotalMetrics() const;

  // Exports per-site metrics (prefix "site<i>.") plus cluster-wide
  // aggregates (prefix "cluster.") and transport counters into
  // `registry`.
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  Options options_;
  Simulator sim_;
  FaultPlan faults_;
  Rng rng_;
  std::unique_ptr<SimTransport> transport_;
  std::unique_ptr<BatchingTransport> batching_;
  // What sites register on / send through: batching_ if enabled, else
  // transport_.
  Transport* endpoint_ = nullptr;
  std::unique_ptr<SimScheduler> scheduler_;
  std::vector<std::unique_ptr<Site>> sites_;
};

class ThreadCluster {
 public:
  struct Options {
    size_t site_count = 3;
    EngineConfig engine;
    uint64_t seed = 42;
    ItemStore::DefaultFactory default_factory;
    FaultPlan* faults = nullptr;  // optional shared fault plan
    // When set, sites use this externally owned transport (e.g. a
    // TcpTransport) instead of an internal MemTransport.
    Transport* transport = nullptr;
    // Optional protocol trace sink shared by every site's engine. Must
    // be thread-safe (VectorTraceSink and CountingTraceSink are).
    TraceSink* trace = nullptr;
    // When non-empty, site i logs to "<wal_dir>/site<i>.wal" with the
    // `wal` knobs (so benches can compare per-record fsync vs group
    // commit); empty disables durability.
    std::string wal_dir;
    Wal::Options wal;
    // Message batching: wraps the transport in a BatchingTransport with
    // a real flusher thread. Off by default.
    bool enable_batching = false;
    BatchingTransport::Options batching;
    size_t store_shards = ItemStore::kDefaultShards;
  };

  explicit ThreadCluster(Options options);
  ~ThreadCluster();

  size_t size() const { return sites_.size(); }
  Site& site(size_t index) { return *sites_[index]; }
  SiteId site_id(size_t index) const { return SiteId(index + 1); }
  Transport& transport() { return *endpoint_; }
  // Null unless enable_batching.
  BatchingTransport* batching() { return batching_.get(); }

  void Load(size_t site_index, const ItemKey& key, Value value);

  TxnId Submit(size_t coordinator_index, TxnSpec spec, TxnCallback callback);

  // Submits and blocks the calling thread until the result arrives or
  // `timeout_seconds` elapse.
  std::optional<TxnResult> SubmitAndWait(size_t coordinator_index,
                                         TxnSpec spec,
                                         double timeout_seconds = 10.0);

  EngineMetrics TotalMetrics() const;

  // Same layout as SimCluster::ExportMetrics, minus transport counters.
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  Options options_;
  std::unique_ptr<MemTransport> owned_transport_;
  Transport* transport_;  // inner transport (owned or external)
  std::unique_ptr<BatchingTransport> batching_;
  Transport* endpoint_ = nullptr;  // what sites actually use
  ThreadScheduler scheduler_;
  std::vector<std::unique_ptr<Site>> sites_;
};

}  // namespace polyvalue

#endif  // SRC_SYSTEM_CLUSTER_H_
