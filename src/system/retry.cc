#include "src/system/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace polyvalue {

std::optional<TxnResult> RunWithRetries(
    SimCluster* cluster, size_t coordinator_index,
    const std::function<TxnSpec()>& make_spec, const RetryPolicy& policy) {
  double backoff = policy.initial_backoff;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    std::optional<TxnResult> result =
        cluster->SubmitAndRun(coordinator_index, make_spec());
    if (result.has_value() && result->committed()) {
      return result;
    }
    cluster->RunFor(backoff);
    backoff = std::min(backoff * policy.backoff_multiplier,
                       policy.max_backoff);
  }
  return std::nullopt;
}

std::optional<TxnResult> RunWithRetries(
    ThreadCluster* cluster, size_t coordinator_index,
    const std::function<TxnSpec()>& make_spec, const RetryPolicy& policy) {
  double backoff = policy.initial_backoff;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    std::optional<TxnResult> result =
        cluster->SubmitAndWait(coordinator_index, make_spec());
    if (result.has_value() && result->committed()) {
      return result;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(backoff * 1e6)));
    backoff = std::min(backoff * policy.backoff_multiplier,
                       policy.max_backoff);
  }
  return std::nullopt;
}

}  // namespace polyvalue
