#include "src/system/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace polyvalue {

namespace {

constexpr uint64_t kDefaultJitterSeed = 0x7e7291a5u;

Rng MakeJitterRng(const RetryPolicy& policy) {
  return Rng(policy.jitter_seed != 0 ? policy.jitter_seed
                                     : kDefaultJitterSeed);
}

}  // namespace

double DecorrelatedJitterBackoff(Rng* rng, double base, double cap,
                                 double prev) {
  const double hi = std::max(base, 3.0 * prev);
  const double draw = base + (hi - base) * rng->NextDouble();
  return std::min(cap, draw);
}

double NextBackoff(const RetryPolicy& policy, Rng* rng, double prev) {
  if (policy.decorrelated_jitter) {
    return DecorrelatedJitterBackoff(rng, policy.initial_backoff,
                                     policy.max_backoff, prev);
  }
  return std::min(prev * policy.backoff_multiplier, policy.max_backoff);
}

std::optional<TxnResult> RunWithRetries(
    SimCluster* cluster, size_t coordinator_index,
    const std::function<TxnSpec()>& make_spec, const RetryPolicy& policy) {
  Rng rng = MakeJitterRng(policy);
  // Jitter from the very first sleep: a deterministic first backoff
  // would keep the herd synchronized for one extra round.
  double backoff =
      policy.decorrelated_jitter
          ? DecorrelatedJitterBackoff(&rng, policy.initial_backoff,
                                      policy.max_backoff,
                                      policy.initial_backoff)
          : policy.initial_backoff;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    std::optional<TxnResult> result =
        cluster->SubmitAndRun(coordinator_index, make_spec());
    if (result.has_value() && result->committed()) {
      return result;
    }
    cluster->RunFor(backoff);
    backoff = NextBackoff(policy, &rng, backoff);
  }
  return std::nullopt;
}

std::optional<TxnResult> RunWithRetries(
    ThreadCluster* cluster, size_t coordinator_index,
    const std::function<TxnSpec()>& make_spec, const RetryPolicy& policy) {
  Rng rng = MakeJitterRng(policy);
  // Jitter from the very first sleep: a deterministic first backoff
  // would keep the herd synchronized for one extra round.
  double backoff =
      policy.decorrelated_jitter
          ? DecorrelatedJitterBackoff(&rng, policy.initial_backoff,
                                      policy.max_backoff,
                                      policy.initial_backoff)
          : policy.initial_backoff;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    std::optional<TxnResult> result =
        cluster->SubmitAndWait(coordinator_index, make_spec());
    if (result.has_value() && result->committed()) {
      return result;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(backoff * 1e6)));
    backoff = NextBackoff(policy, &rng, backoff);
  }
  return std::nullopt;
}

}  // namespace polyvalue
