#include "src/system/site.h"

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/store/recovery.h"
#include "src/store/snapshot.h"

namespace polyvalue {

Site::Site(SiteId id, Transport* transport, Scheduler* scheduler,
           Options options)
    : id_(id),
      transport_(transport),
      scheduler_(scheduler),
      options_(std::move(options)),
      items_(options_.default_factory, options_.store_shards) {
  engine_ = std::make_unique<TxnEngine>(
      id_, &items_, &outcomes_, scheduler,
      [this](SiteId to, const Message& msg) {
        const Status s =
            transport_->Send(Packet{id_, to, msg.Encode()});
        if (!s.ok()) {
          POLYV_DEBUG << id_ << " send to " << to << " failed: " << s;
        }
      },
      options_.engine);
  if (options_.engine.leg == ProtocolLeg::kPaxosCommit) {
    paxos_ = std::make_unique<PaxosEngine>(
        id_, &items_, scheduler,
        [this](SiteId to, const Message& msg) {
          const Status s =
              transport_->Send(Packet{id_, to, msg.Encode()});
          if (!s.ok()) {
            POLYV_DEBUG << id_ << " send to " << to << " failed: " << s;
          }
        },
        options_.engine);
    active_ = paxos_.get();
  } else {
    active_ = engine_.get();
  }
  // Only the active leg traces: the idle engine would otherwise emit
  // spurious kCrash/kRecover events into the audited stream.
  if (options_.trace != nullptr) {
    if (paxos_ != nullptr) {
      paxos_->AttachTrace(options_.trace);
    } else {
      engine_->AttachTrace(options_.trace);
    }
  }
}

Site::~Site() {
  if (started_) {
    (void)transport_->Unregister(id_);
  }
}

Status Site::Start() {
  if (started_) {
    return FailedPreconditionError("site already started");
  }
  if (!options_.wal_path.empty()) {
    // Snapshot first (if one exists and is intact), then the WAL tail.
    const std::string snap_path = options_.wal_path + ".snap";
    const Result<SiteSnapshot> snapshot = ReadSnapshotFile(snap_path);
    if (snapshot.ok()) {
      RestoreStores(snapshot.value(), &items_, &outcomes_);
      engine_->ImportDurableState(snapshot.value());
    } else if (snapshot.status().code() != StatusCode::kNotFound) {
      POLYV_WARN << id_ << " ignoring unreadable snapshot: "
                 << snapshot.status();
    }
    POLYV_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                           Wal::ReplayFile(options_.wal_path));
    POLYV_RETURN_IF_ERROR(RecoverSiteState(records, &items_, &outcomes_,
                                           options_.trace, id_));
    engine_->RestoreDurableState(records);
    POLYV_ASSIGN_OR_RETURN(wal_, Wal::Open(options_.wal_path, options_.wal));
    engine_->AttachWal(wal_.get());
  }
  POLYV_RETURN_IF_ERROR(transport_->Register(
      id_, [this](Packet packet) { OnPacket(std::move(packet)); }));
  started_ = true;
  return OkStatus();
}

Status Site::Checkpoint() {
  if (wal_ == nullptr) {
    return FailedPreconditionError("site has no WAL configured");
  }
  SiteSnapshot snapshot = CaptureStores(items_, outcomes_);
  engine_->ExportDurableState(&snapshot);
  POLYV_RETURN_IF_ERROR(
      WriteSnapshotFile(snapshot, options_.wal_path + ".snap"));
  if (options_.trace != nullptr) {
    TraceEvent event;
    event.time = scheduler_->Now();
    event.type = TraceEventType::kCheckpoint;
    event.site = id_;
    event.arg = snapshot.items.size();
    options_.trace->Emit(event);
  }
  return wal_->Reset();
}

void Site::OnPacket(Packet packet) {
  Result<Message> msg = Message::Decode(packet.payload);
  if (!msg.ok()) {
    POLYV_WARN << id_ << " dropping malformed packet from " << packet.from
               << ": " << msg.status();
    return;
  }
  active_->OnMessage(packet.from, msg.value());
}

void Site::Load(const ItemKey& key, Value value) {
  items_.Write(key, PolyValue::Certain(std::move(value)));
}

TxnId Site::Submit(TxnSpec spec, TxnCallback callback) {
  return active_->Submit(std::move(spec), std::move(callback));
}

Result<PolyValue> Site::Peek(const ItemKey& key) const {
  return items_.Read(key);
}

Site::Stats Site::GetStats() const {
  Stats stats;
  stats.items = items_.size();
  stats.uncertain_items = items_.UncertainCount();
  stats.locked_items = items_.locked_count();
  stats.tracked_transactions = outcomes_.tracked_count();
  stats.engine = engine_->metrics();
  if (paxos_ != nullptr) {
    stats.engine.Accumulate(paxos_->metrics());
  }
  return stats;
}

std::optional<bool> Site::DecidedOutcome(TxnId txn) const {
  return active_->DecidedOutcome(txn);
}

void Site::AwaitCertain(const PolyValue& value,
                        std::function<void(const Value&)> callback) {
  const std::vector<TxnId> deps = value.Dependencies();
  if (deps.empty()) {
    callback(value.certain_value());
    return;
  }
  // Shared accumulator: each dependency resolution records its outcome;
  // the last one computes the final value.
  struct Pending {
    PolyValue value;
    std::unordered_map<TxnId, bool> outcomes;
    size_t remaining;
    std::function<void(const Value&)> callback;
  };
  auto pending = std::make_shared<Pending>();
  pending->value = value;
  pending->remaining = deps.size();
  pending->callback = std::move(callback);
  for (TxnId dep : deps) {
    engine_->SubscribeOutcome(dep, [pending, dep](bool committed) {
      pending->outcomes.emplace(dep, committed);
      if (--pending->remaining == 0) {
        const Result<Value> final_value =
            pending->value.ValueUnder(pending->outcomes);
        if (final_value.ok()) {
          pending->callback(final_value.value());
        }
      }
    });
  }
}

void Site::Crash(FaultPlan* faults) {
  crashed_ = true;
  if (faults != nullptr) {
    faults->SetSiteDown(id_, true);
  }
  engine_->Crash();
  if (paxos_ != nullptr) {
    paxos_->Crash();
  }
}

void Site::Recover(FaultPlan* faults) {
  crashed_ = false;
  if (faults != nullptr) {
    faults->SetSiteDown(id_, false);
  }
  engine_->Recover();
  if (paxos_ != nullptr) {
    paxos_->Recover();
  }
}

}  // namespace polyvalue
