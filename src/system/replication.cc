#include "src/system/replication.h"

#include <optional>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace polyvalue {

ReplicaSet::ReplicaSet(std::string logical_name, std::vector<SiteId> sites)
    : logical_name_(std::move(logical_name)), sites_(std::move(sites)) {
  POLYV_CHECK(!sites_.empty());
}

ItemKey ReplicaSet::KeyAt(SiteId site) const {
  return StrCat(logical_name_, "@", site.value());
}

void ReplicaSet::AddToWriteSet(TxnSpec* spec) const {
  for (SiteId site : sites_) {
    spec->ReadWrite(KeyAt(site), site);
  }
}

void ReplicaSet::AddToReadSet(TxnSpec* spec, SiteId preferred) const {
  bool member = false;
  for (SiteId site : sites_) {
    member = member || site == preferred;
  }
  POLYV_CHECK(member);
  spec->Read(KeyAt(preferred), preferred);
}

void ReplicaSet::AddToReadSet(TxnSpec* spec) const {
  AddToReadSet(spec, sites_.front());
}

TxnSpec ReplicaSet::MakeUpdate(
    std::function<Result<Value>(const Value&)> update) const {
  TxnSpec spec;
  AddToWriteSet(&spec);
  const ItemKey primary = KeyAt(sites_.front());
  std::vector<ItemKey> copy_keys;
  copy_keys.reserve(sites_.size());
  for (SiteId site : sites_) {
    copy_keys.push_back(KeyAt(site));
  }
  spec.Logic([primary, copy_keys = std::move(copy_keys),
              update = std::move(update)](const TxnReads& reads) {
    const Result<Value> next = update(reads.at(primary));
    if (!next.ok()) {
      return TxnEffect::Abort(next.status().message());
    }
    TxnEffect e;
    for (const ItemKey& key : copy_keys) {
      e.writes[key] = next.value();
    }
    e.output = next.value();
    return e;
  });
  return spec;
}

TxnSpec ReplicaSet::MakeRead(SiteId preferred) const {
  TxnSpec spec;
  AddToReadSet(&spec, preferred);
  const ItemKey copy = KeyAt(preferred);
  spec.Logic([copy](const TxnReads& reads) {
    TxnEffect e;
    e.output = reads.at(copy);
    return e;
  });
  return spec;
}

TxnSpec ReplicaSet::MakeRead() const { return MakeRead(sites_.front()); }

void LoadReplicated(SimCluster* cluster, const ReplicaSet& replicas,
                    const Value& value) {
  for (SiteId site : replicas.sites()) {
    cluster->site(site.value() - 1).Load(replicas.KeyAt(site), value);
  }
}

bool ReplicasConsistent(SimCluster* cluster, const ReplicaSet& replicas) {
  std::optional<PolyValue> reference;
  for (SiteId site : replicas.sites()) {
    Site& s = cluster->site(site.value() - 1);
    if (s.crashed()) {
      continue;
    }
    const Result<PolyValue> copy = s.Peek(replicas.KeyAt(site));
    if (!copy.ok()) {
      return false;
    }
    if (!reference.has_value()) {
      reference = copy.value();
    } else if (!(*reference == copy.value())) {
      return false;
    }
  }
  return true;
}

}  // namespace polyvalue
