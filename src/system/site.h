// A site: one autonomous node of the distributed database.
//
// Binds together the per-site pieces — item store, outcome table,
// transaction engine, optional write-ahead log — and connects them to a
// Transport endpoint. The same Site class runs on the deterministic
// simulator and on the threaded/TCP runtimes; only the injected
// Transport and Scheduler differ.
#ifndef SRC_SYSTEM_SITE_H_
#define SRC_SYSTEM_SITE_H_

#include <memory>
#include <string>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/net/transport.h"
#include "src/paxos/paxos_engine.h"
#include "src/store/item_store.h"
#include "src/store/outcome_table.h"
#include "src/store/wal.h"
#include "src/txn/engine.h"
#include "src/txn/scheduler.h"

namespace polyvalue {

class Site {
 public:
  struct Options {
    EngineConfig engine;
    // Factory for reads of missing items (nullptr: strict NOT_FOUND).
    ItemStore::DefaultFactory default_factory;
    // Path for the WAL; empty disables durability.
    std::string wal_path;
    // WAL durability/batching knobs (sync policy, group-commit window).
    // The default is today's behaviour: buffered writes, explicit sync.
    Wal::Options wal;
    // Item-store data-plane shards (lock granularity for concurrent
    // reads/installs; does not affect observable behaviour).
    size_t store_shards = ItemStore::kDefaultShards;
    // Optional protocol trace sink; attached to the engine and the WAL
    // replay path. Null costs nothing.
    TraceSink* trace = nullptr;
  };

  // `transport` and `scheduler` must outlive the site.
  Site(SiteId id, Transport* transport, Scheduler* scheduler,
       Options options);
  Site(SiteId id, Transport* transport, Scheduler* scheduler)
      : Site(id, transport, scheduler, Options()) {}
  ~Site();

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  // Registers the transport endpoint and, when a WAL path is configured,
  // restores durable state: the latest snapshot (if any) first, then the
  // WAL tail. Call once before traffic.
  Status Start();

  // Captures a snapshot of all durable state (items, outcome table,
  // prepared votes, decisions) to "<wal_path>.snap" and truncates the
  // WAL. Requires a configured WAL path. The write is atomic
  // (temp + rename): a crash mid-checkpoint leaves the previous
  // snapshot + full WAL intact.
  Status Checkpoint();

  SiteId id() const { return id_; }
  ItemStore& store() { return items_; }
  const ItemStore& store() const { return items_; }
  OutcomeTable& outcomes() { return outcomes_; }
  TxnEngine& engine() { return *engine_; }
  // Null unless Options::engine.leg == ProtocolLeg::kPaxosCommit.
  PaxosEngine* paxos() { return paxos_.get(); }
  // The protocol leg this site actually runs (Submit/packet routing).
  CommitProtocol& protocol() { return *active_; }
  // Null until Start(), or when no WAL path is configured.
  const Wal* wal() const { return wal_.get(); }

  // Seeds an item with a certain value (initial database load).
  void Load(const ItemKey& key, Value value);

  // Submits a transaction coordinated by this site.
  TxnId Submit(TxnSpec spec, TxnCallback callback);

  // Reads an item's current (poly)value directly (local inspection).
  Result<PolyValue> Peek(const ItemKey& key) const;

  // The outcome the active protocol leg has durably decided for `txn`
  // at this site, if any (protocol-agnostic audit hook).
  std::optional<bool> DecidedOutcome(TxnId txn) const;

  // One-look operational summary of a site.
  struct Stats {
    size_t items = 0;
    size_t uncertain_items = 0;
    size_t locked_items = 0;
    size_t tracked_transactions = 0;  // unknown-outcome txns in the table
    EngineMetrics engine;
  };
  Stats GetStats() const;

  // §3.4's second option: withholds an uncertain value until every
  // transaction it depends on resolves, then delivers the one true Value.
  // Fires immediately for certain inputs. The callback runs at most once;
  // it is dropped if this site crashes first.
  void AwaitCertain(const PolyValue& value,
                    std::function<void(const Value&)> callback);

  // --- failure simulation ---
  // Marks the site down in `faults` (if given) and drops volatile engine
  // state, as a real crash would.
  void Crash(FaultPlan* faults = nullptr);
  // Brings the site back: clears the fault, re-applies the in-doubt
  // policy to surviving prepared transactions, restarts inquiries.
  void Recover(FaultPlan* faults = nullptr);
  bool crashed() const { return crashed_; }

 private:
  void OnPacket(Packet packet);

  const SiteId id_;
  Transport* const transport_;
  Scheduler* const scheduler_;
  Options options_;
  ItemStore items_;
  OutcomeTable outcomes_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<TxnEngine> engine_;
  std::unique_ptr<PaxosEngine> paxos_;
  // Whichever engine the configured ProtocolLeg selects; all Submit
  // calls and incoming packets route here.
  CommitProtocol* active_ = nullptr;
  bool started_ = false;
  bool crashed_ = false;
};

}  // namespace polyvalue

#endif  // SRC_SYSTEM_SITE_H_
