// Replicated items.
//
// §3 of the paper: "An item that is replicated at several sites can be
// viewed as a set of individual items, one for each site." This helper
// packages that view: a ReplicaSet names the per-site copies of one
// logical item, writes update every copy atomically (they ride one
// transaction, so the commit protocol keeps the copies identical), and
// reads consult one designated copy — with a consistency checker for
// tests and repair tooling.
//
// Polyvalues compose transparently: if a failure strands an update, every
// copy holds the same polyvalue, and outcome propagation reduces them all.
#ifndef SRC_SYSTEM_REPLICATION_H_
#define SRC_SYSTEM_REPLICATION_H_

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/system/cluster.h"
#include "src/txn/txn_types.h"

namespace polyvalue {

class ReplicaSet {
 public:
  // The per-site key is "<logical>@<site>" so copies never collide even
  // when two replicas land on one site.
  ReplicaSet(std::string logical_name, std::vector<SiteId> sites);

  const std::string& logical_name() const { return logical_name_; }
  const std::vector<SiteId>& sites() const { return sites_; }
  size_t size() const { return sites_.size(); }

  // Key of the copy stored at `site`.
  ItemKey KeyAt(SiteId site) const;

  // Adds every copy to `spec`'s read and write sets.
  void AddToWriteSet(TxnSpec* spec) const;
  // Adds the copy at `preferred` to the read set. `preferred` must be
  // one of this set's sites (CHECK-failed otherwise) — the caller (a
  // read router, a region-aware workload) picks which replica serves.
  void AddToReadSet(TxnSpec* spec, SiteId preferred) const;

  // Builds a read-modify-write transaction that applies `update` to the
  // logical value and writes the result to every copy. The update sees
  // the first-listed copy (all copies are identical by construction).
  TxnSpec MakeUpdate(
      std::function<Result<Value>(const Value&)> update) const;

  // Builds a read-only transaction returning the logical value as seen
  // by the copy at `preferred`.
  TxnSpec MakeRead(SiteId preferred) const;

  // Deprecated first-listed-copy defaults. Hardwiring the first copy
  // made every read hit one site regardless of where the caller runs;
  // pass the replica you actually want to serve the read.
  [[deprecated("pass a preferred site")]] void AddToReadSet(
      TxnSpec* spec) const;
  [[deprecated("pass a preferred site")]] TxnSpec MakeRead() const;

 private:
  std::string logical_name_;
  std::vector<SiteId> sites_;
};

// Seeds every copy with `value` (direct load, pre-traffic).
void LoadReplicated(SimCluster* cluster, const ReplicaSet& replicas,
                    const Value& value);

// True if every *reachable* copy holds the same (poly)value. Copies on
// crashed sites are skipped (they catch up through recovery).
bool ReplicasConsistent(SimCluster* cluster, const ReplicaSet& replicas);

}  // namespace polyvalue

#endif  // SRC_SYSTEM_REPLICATION_H_
