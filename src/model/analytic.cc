#include "src/model/analytic.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace polyvalue {

std::string ModelParams::ToString() const {
  std::ostringstream oss;
  oss << "U=" << updates_per_second << " F=" << failure_probability
      << " I=" << items << " R=" << recovery_rate
      << " Y=" << overwrite_probability << " D=" << dependency_degree;
  return oss.str();
}

Prediction Predict(const ModelParams& p) {
  Prediction out;
  const double denominator = p.items * p.recovery_rate +
                             p.updates_per_second * p.overwrite_probability -
                             p.updates_per_second * p.dependency_degree;
  out.decay_rate = denominator / p.items;
  out.stable = denominator > 0;
  if (!out.stable) {
    out.steady_state = std::numeric_limits<double>::infinity();
    out.saturation = 1.0;
    return out;
  }
  out.steady_state =
      p.updates_per_second * p.failure_probability * p.items / denominator;
  out.saturation = out.steady_state / p.items;
  return out;
}

double TransientP(const ModelParams& params, double p0, double t) {
  const Prediction pred = Predict(params);
  if (!pred.stable) {
    // P'(t) = UF - kP with k <= 0: solve directly.
    const double k = pred.decay_rate;
    const double uf =
        params.updates_per_second * params.failure_probability;
    if (k == 0) {
      return p0 + uf * t;
    }
    return (uf / k) + (p0 - uf / k) * std::exp(-k * t);
  }
  return pred.steady_state +
         (p0 - pred.steady_state) * std::exp(-pred.decay_rate * t);
}

std::vector<Table1Row> Table1Rows() {
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  std::vector<Table1Row> rows;
  auto add = [&rows](double u, double f, double i, double r, double y,
                     double d, double paper, const char* note) {
    ModelParams p;
    p.updates_per_second = u;
    p.failure_probability = f;
    p.items = i;
    p.recovery_rate = r;
    p.overwrite_probability = y;
    p.dependency_degree = d;
    rows.push_back({p, paper, note});
  };
  // First row: the paper's "typical database".
  add(10, 1e-4, 1e6, 1e-3, 0, 1, 1.01, "typical database");
  // Remaining rows vary individual parameters (reconstructed grid; the
  // archival scan of Table 1 is partially illegible — rows whose printed
  // P could not be read carry NaN and are reported computed-only).
  add(100, 1e-4, 1e6, 1e-3, 0, 1, 11.11, "U x10");
  add(10, 1e-4, 1e5, 1e-3, 0, 1, 1.11, "I /10");
  add(10, 1e-4, 1e5, 1e-3, 0, 5, 2.00, "I /10, D=5");
  add(10, 1e-4, 1e5, 1e-3, 1, 1, 1.00, "I /10, Y=1");
  add(10, 1e-4, 2e4, 1e-3, 0, 1, 2.00, "I /50");
  add(10, 1e-3, 1e6, 1e-3, 0, 1, 10.10, "F x10");
  add(10, 5e-3, 1e6, 1e-3, 0, 1, 50.50, "F x50");
  add(10, 1e-4, 1e6, 1e-4, 0, 1, 11.11, "R /10 (print: 11.00)");
  add(10, 1e-4, 1e6, 1e-3, 0, 10, kNaN, "D=10 (scan illegible)");
  add(10, 1e-4, 1e6, 1e-4, 0, 10, kNaN, "R /10, D=10: near-critical");
  return rows;
}

}  // namespace polyvalue
