// The §4.1 birth–death model of polyvalue counts.
//
// With parameters
//   U  updates per second
//   F  probability an update fails (creating a polyvalue)
//   I  items in the database
//   R  proportion of outstanding failures recovered per second
//   Y  probability an update's new value ignores the previous value
//   D  mean number of items a new value depends on
//
// the paper's first-order balance is
//
//   P'(t) = U·F + U·D·P/I − U·Y·P/I − R·P  =  U·F − k·P,
//   k = (I·R + U·Y − U·D) / I,
//
// giving the steady state  P∞ = U·F·I / (I·R + U·Y − U·D)  and the
// transient  P(t) = P∞ + (P0 − P∞)·e^{−k·t}.  The solution is only
// meaningful while P ≪ I and k > 0; Prediction reports both caveats
// instead of hiding them (§4.1 discusses exactly this).
#ifndef SRC_MODEL_ANALYTIC_H_
#define SRC_MODEL_ANALYTIC_H_

#include <string>
#include <vector>

namespace polyvalue {

struct ModelParams {
  double updates_per_second = 10;     // U
  double failure_probability = 1e-4;  // F
  double items = 1e6;                 // I
  double recovery_rate = 1e-3;        // R
  double overwrite_probability = 0;   // Y
  double dependency_degree = 1;       // D

  std::string ToString() const;
};

struct Prediction {
  // Steady-state expected polyvalue count (infinity when unstable).
  double steady_state = 0;
  // Exponential decay rate k; 1/k is the time constant.
  double decay_rate = 0;
  // k > 0: perturbations shrink back to the steady state.
  bool stable = false;
  // steady_state / I — the model is only trustworthy when this is small.
  double saturation = 0;
};

// Evaluates the closed-form model.
Prediction Predict(const ModelParams& params);

// P(t) from initial count p0 (uses the transient solution; for an
// unstable system this grows without bound, as the paper warns).
double TransientP(const ModelParams& params, double p0, double t);

// One row of Table 1: parameters plus the paper's printed P where the
// archival copy is legible (NaN where it is not; see EXPERIMENTS.md).
struct Table1Row {
  ModelParams params;
  double paper_value;  // NaN = illegible in the source scan
  const char* note;
};

// The Table 1 parameter grid (first row = "typical database", remaining
// rows vary one parameter each, reconstructed from the paper).
std::vector<Table1Row> Table1Rows();

}  // namespace polyvalue

#endif  // SRC_MODEL_ANALYTIC_H_
