// The serving front door: admission control, deadline budgets, and
// budgeted retries in front of a cluster.
//
// The paper argues polyvalues keep a site AVAILABLE under failure; this
// layer is where availability becomes a measurable contract under
// OVERLOAD. Every request passes three disciplines on its way in and
// out:
//
//   1. Admission (src/svc/admission.h): a token bucket bounds the
//      admitted rate and an in-flight cap bounds concurrency. A refused
//      request fails fast with RESOURCE_EXHAUSTED — typed distinctly
//      from a timeout, so clients and dashboards can tell "the system
//      chose not to start" from "the system started and ran out of
//      time".
//   2. Deadline budget: each request carries an absolute deadline,
//      checked at submit, before every retry attempt (an attempt whose
//      backoff would land past the deadline is not started), and
//      enforced by a timer so a stuck attempt still settles as
//      DEADLINE_EXCEEDED on time.
//   3. Retry budget (tail-at-scale): aborted attempts retry with
//      decorrelated-jitter backoff, but only while the shared
//      RetryBudget allows — retries cannot amplify a conflict burst
//      into a storm.
//
// Latency from admission to settlement is recorded in a lock-free
// LogHistogram; ExportMetrics publishes `svc.*` counters and
// percentile gauges through MetricsRegistry, and a TraceSink sees
// `svc_admitted` / `svc_shed` / `svc_deadline_exceeded` / `svc_retry`
// events (docs/OBSERVABILITY.md).
//
// Two variants share all of the above:
//   SimFrontDoor    — asynchronous, on SimCluster's virtual clock;
//                     fully deterministic per seed, so overload
//                     behaviour is a unit test, not an anecdote.
//   ThreadFrontDoor — blocking, wall clock, on ThreadCluster; the
//                     shape a real client library would use.
#ifndef SRC_SVC_FRONT_DOOR_H_
#define SRC_SVC_FRONT_DOOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/svc/admission.h"
#include "src/system/cluster.h"

namespace polyvalue {

struct SvcOptions {
  AdmissionController::Options admission;
  RetryBudget::Options retry_budget;
  // Deadline applied when a call does not carry its own.
  double default_deadline = 1.0;  // seconds
  // Per-request attempt ceiling; the shared retry budget usually binds
  // first under load.
  int max_attempts = 8;
  // Decorrelated-jitter backoff bounds (see src/system/retry.h).
  double initial_backoff = 0.005;
  double max_backoff = 0.1;
  // Seed for the per-request jitter streams (deterministic under sim).
  uint64_t seed = 0x5caff01d;
  // Optional sink for svc_* events; null disables at zero cost.
  TraceSink* trace = nullptr;
};

// What the serving layer tells the client. `status` is OK on commit
// (including read-only), RESOURCE_EXHAUSTED when shed at admission or
// denied by the retry budget, DEADLINE_EXCEEDED when the deadline
// budget ran out, ABORTED when every permitted attempt aborted.
struct SvcResult {
  Status status;
  // The final transaction result, when an attempt reached a terminal
  // disposition (absent for sheds and for deadlines that fired before
  // any attempt resolved).
  std::optional<TxnResult> txn;
  int attempts = 0;
  // Admission-to-settlement seconds (0 for sheds, which never enter).
  double latency = 0.0;

  bool ok() const { return status.ok(); }
};

using SvcCallback = std::function<void(const SvcResult&)>;

// Settlement counters shared by both front doors (all post-admission;
// admission's own counters live in AdmissionController).
struct SvcCounters {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> budget_exhausted{0};
  std::atomic<uint64_t> retries{0};
};

// Publishes the `svc.*` metric family (docs/OBSERVABILITY.md) from one
// front door's state into `registry`.
void ExportSvcMetrics(const AdmissionController& admission,
                      const RetryBudget& budget,
                      const SvcCounters& counters,
                      const LogHistogram& latency,
                      MetricsRegistry* registry);

// Deterministic, asynchronous front door over SimCluster. Calls are
// settled by simulator events; drive the simulator (RunFor / RunAll /
// CallAndRun) to make progress. Single-threaded like the simulator.
class SimFrontDoor {
 public:
  SimFrontDoor(SimCluster* cluster, SvcOptions options);

  // Admission happens now (synchronously); `done` fires either
  // immediately (shed) or from a later simulator step. `done` may be
  // null when only the counters/histogram matter (open-loop load).
  void Call(size_t coordinator, std::function<TxnSpec()> make_spec,
            SvcCallback done = nullptr);
  void Call(size_t coordinator, std::function<TxnSpec()> make_spec,
            double deadline_seconds, SvcCallback done = nullptr);

  // Bulk virtual-client path (src/workload): identical admission /
  // deadline / retry machinery, but the caller supplies the client
  // identity. The backoff-jitter stream is seeded from (options.seed,
  // client_id), so millions of multiplexed virtual clients get
  // decorrelated, per-client-deterministic jitter while the front door
  // holds NO per-client state — its footprint stays O(in-flight)
  // regardless of the client population.
  void CallAsClient(uint64_t client_id, size_t coordinator,
                    std::function<TxnSpec()> make_spec,
                    double deadline_seconds, SvcCallback done = nullptr);

  // Convenience: Call and run the simulator until settlement.
  SvcResult CallAndRun(size_t coordinator,
                       std::function<TxnSpec()> make_spec);
  SvcResult CallAndRun(size_t coordinator,
                       std::function<TxnSpec()> make_spec,
                       double deadline_seconds);

  const AdmissionController& admission() const { return admission_; }
  const RetryBudget& retry_budget() const { return budget_; }
  const LogHistogram& latency() const { return latency_; }
  const SvcCounters& counters() const { return counters_; }

  void ExportMetrics(MetricsRegistry* registry) const {
    ExportSvcMetrics(admission_, budget_, counters_, latency_, registry);
  }

 private:
  struct Request;

  void CallWithJitterSeed(uint64_t jitter_seed, size_t coordinator,
                          std::function<TxnSpec()> make_spec,
                          double deadline_seconds, SvcCallback done);
  void StartAttempt(const std::shared_ptr<Request>& req);
  void OnTxnDone(const std::shared_ptr<Request>& req, const TxnResult& r);
  void OnDeadline(const std::shared_ptr<Request>& req);
  void Settle(const std::shared_ptr<Request>& req, Status status,
              const TxnResult* txn);
  void Emit(TraceEventType type, SiteId site, TxnId txn, bool flag,
            uint64_t arg);

  SimCluster* cluster_;
  SvcOptions options_;
  AdmissionController admission_;
  RetryBudget budget_;
  LogHistogram latency_;
  SvcCounters counters_;
  uint64_t next_request_ = 0;  // decorrelates per-request jitter streams
};

// Blocking front door over ThreadCluster: Call() returns when the
// request settles. Thread-safe; admission and the retry budget are the
// shared state, everything else is per-call.
class ThreadFrontDoor {
 public:
  ThreadFrontDoor(ThreadCluster* cluster, SvcOptions options);

  SvcResult Call(size_t coordinator, std::function<TxnSpec()> make_spec);
  SvcResult Call(size_t coordinator, std::function<TxnSpec()> make_spec,
                 double deadline_seconds);

  const AdmissionController& admission() const { return admission_; }
  const RetryBudget& retry_budget() const { return budget_; }
  const LogHistogram& latency() const { return latency_; }
  const SvcCounters& counters() const { return counters_; }

  void ExportMetrics(MetricsRegistry* registry) const {
    ExportSvcMetrics(admission_, budget_, counters_, latency_, registry);
  }

 private:
  double Now() const;  // steady seconds since construction
  void Emit(TraceEventType type, SiteId site, TxnId txn, bool flag,
            uint64_t arg);

  ThreadCluster* cluster_;
  SvcOptions options_;
  AdmissionController admission_;
  RetryBudget budget_;
  LogHistogram latency_;
  SvcCounters counters_;
  std::atomic<uint64_t> next_request_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace polyvalue

#endif  // SRC_SVC_FRONT_DOOR_H_
