// Admission control for the serving front door.
//
// The protocol layer (src/txn, src/system) will happily accept
// unbounded concurrent transactions; under overload that means every
// request locks against every other, abort/retry storms, and goodput
// collapse. SEDA-style admission control moves the refusal to the
// FRONT of the system, where it is cheap and typed: a request that
// would be wasted work is shed with RESOURCE_EXHAUSTED before it
// touches an engine lock.
//
// Two independent gates, both enforced by AdmissionController:
//   * a token bucket (rate `rate_limit`, depth `burst`) bounding the
//     ADMISSION RATE — the knob that keeps offered load at or below
//     the cluster's saturation point; and
//   * an in-flight cap bounding CONCURRENCY — the knob that keeps the
//     lock-conflict probability (and so the abort rate) bounded no
//     matter how bursty the admitted traffic is.
//
// RetryBudget implements the tail-at-scale retry discipline (Dean &
// Barroso): retries may consume at most ~`ratio` of the first-attempt
// rate, cluster-wide, so a conflict burst cannot amplify itself into a
// retry storm. First attempts earn budget; every retry spends it.
//
// Time is passed in by the caller (sim virtual time or a steady-clock
// reading), so the same code is deterministic under SimCluster and
// honest under ThreadCluster.
#ifndef SRC_SVC_ADMISSION_H_
#define SRC_SVC_ADMISSION_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace polyvalue {

class AdmissionController {
 public:
  struct Options {
    // Sustained admission rate, requests/second. 0 = no rate limit.
    double rate_limit = 0.0;
    // Token-bucket depth (burst tolerance). 0 picks max(rate_limit/10, 1).
    double burst = 0.0;
    // Maximum admitted-but-not-finished requests. 0 = no cap.
    size_t max_inflight = 0;
  };

  explicit AdmissionController(Options options);

  // Admission decision at time `now` (seconds on the caller's clock;
  // must be monotonic). OK means an in-flight slot is held until
  // Release(). Errors are RESOURCE_EXHAUSTED, with the message naming
  // which gate refused; `rate_limited`, when non-null, is set to true
  // iff the token bucket (not the in-flight cap) refused.
  Status Admit(double now, bool* rate_limited = nullptr);

  // Returns the in-flight slot of an admitted request.
  void Release();

  size_t inflight() const;
  uint64_t admitted() const;
  uint64_t shed_rate() const;      // refused by the token bucket
  uint64_t shed_capacity() const;  // refused by the in-flight cap
  uint64_t shed() const { return shed_rate() + shed_capacity(); }

 private:
  const Options options_;
  mutable Mutex mu_ POLYV_MUTEX_RANK(kSvcAdmission);
  double tokens_ GUARDED_BY(mu_);
  double last_refill_ GUARDED_BY(mu_) = 0.0;
  size_t inflight_ GUARDED_BY(mu_) = 0;
  uint64_t admitted_ GUARDED_BY(mu_) = 0;
  uint64_t shed_rate_ GUARDED_BY(mu_) = 0;
  uint64_t shed_capacity_ GUARDED_BY(mu_) = 0;
};

class RetryBudget {
 public:
  struct Options {
    // Budget earned per first attempt: retries may consume at most this
    // fraction of the first-attempt rate.
    double ratio = 0.1;
    // Budget cap, in retries: bounds the burst of retries a long quiet
    // period can bank.
    double cap = 50.0;
    // Initial balance, so a cold start can still retry.
    double initial = 10.0;
  };

  explicit RetryBudget(Options options);

  // A first attempt was made: earn `ratio` budget (up to `cap`).
  void OnAttempt();

  // Try to spend one retry's worth of budget. False = denied (the
  // caller should fail the request rather than retry).
  bool TrySpend();

  double balance() const;
  uint64_t denied() const;

 private:
  const Options options_;
  mutable Mutex mu_ POLYV_MUTEX_RANK(kSvcRetryBudget);
  double balance_ GUARDED_BY(mu_);
  uint64_t denied_ GUARDED_BY(mu_) = 0;
};

}  // namespace polyvalue

#endif  // SRC_SVC_ADMISSION_H_
