#include "src/svc/front_door.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/system/retry.h"

namespace polyvalue {

void ExportSvcMetrics(const AdmissionController& admission,
                      const RetryBudget& budget,
                      const SvcCounters& counters,
                      const LogHistogram& latency,
                      MetricsRegistry* registry) {
  registry->SetCounter("svc.admitted", admission.admitted());
  registry->SetCounter("svc.shed", admission.shed());
  registry->SetCounter("svc.shed_rate", admission.shed_rate());
  registry->SetCounter("svc.shed_capacity", admission.shed_capacity());
  registry->SetCounter("svc.committed",
                       counters.committed.load(std::memory_order_relaxed));
  registry->SetCounter("svc.aborted",
                       counters.aborted.load(std::memory_order_relaxed));
  registry->SetCounter(
      "svc.deadline_exceeded",
      counters.deadline_exceeded.load(std::memory_order_relaxed));
  registry->SetCounter(
      "svc.retry_budget_denied",
      counters.budget_exhausted.load(std::memory_order_relaxed));
  registry->SetCounter("svc.retries",
                       counters.retries.load(std::memory_order_relaxed));
  registry->SetCounter("svc.latency_count", latency.count());
  registry->Gauge("svc.inflight",
                  static_cast<double>(admission.inflight()));
  registry->Gauge("svc.retry_budget_balance", budget.balance());
  registry->Gauge("svc.latency_p50", latency.Percentile(50));
  registry->Gauge("svc.latency_p95", latency.Percentile(95));
  registry->Gauge("svc.latency_p99", latency.Percentile(99));
  registry->Gauge("svc.latency_p999", latency.Percentile(99.9));
}

// ------------------------------------------------------------------
// SimFrontDoor
// ------------------------------------------------------------------

struct SimFrontDoor::Request {
  size_t coordinator = 0;
  SiteId site;
  std::function<TxnSpec()> make_spec;
  SvcCallback done;
  double admit_time = 0.0;
  double deadline = 0.0;  // absolute virtual time
  Simulator::EventId deadline_timer = 0;
  int attempts = 0;
  double prev_backoff = 0.0;
  bool settled = false;
  TxnId last_txn;
  Rng jitter;

  explicit Request(uint64_t seed) : jitter(seed) {}
};

SimFrontDoor::SimFrontDoor(SimCluster* cluster, SvcOptions options)
    : cluster_(cluster),
      options_(options),
      admission_(options.admission),
      budget_(options.retry_budget) {}

void SimFrontDoor::Emit(TraceEventType type, SiteId site, TxnId txn,
                        bool flag, uint64_t arg) {
  if (options_.trace == nullptr) {
    return;
  }
  TraceEvent event;
  event.time = cluster_->sim().now();
  event.type = type;
  event.site = site;
  event.txn = txn;
  event.flag = flag;
  event.arg = arg;
  options_.trace->Emit(event);
}

void SimFrontDoor::Call(size_t coordinator,
                        std::function<TxnSpec()> make_spec,
                        SvcCallback done) {
  Call(coordinator, std::move(make_spec), options_.default_deadline,
       std::move(done));
}

void SimFrontDoor::Call(size_t coordinator,
                        std::function<TxnSpec()> make_spec,
                        double deadline_seconds, SvcCallback done) {
  CallWithJitterSeed(options_.seed + next_request_++, coordinator,
                     std::move(make_spec), deadline_seconds,
                     std::move(done));
}

void SimFrontDoor::CallAsClient(uint64_t client_id, size_t coordinator,
                                std::function<TxnSpec()> make_spec,
                                double deadline_seconds, SvcCallback done) {
  // SplitMix64 decorrelates adjacent client ids into unrelated jitter
  // streams (client n and n+1 would otherwise share most of their
  // xoshiro seed material).
  SplitMix64 mix(options_.seed ^ client_id);
  CallWithJitterSeed(mix.Next(), coordinator, std::move(make_spec),
                     deadline_seconds, std::move(done));
}

void SimFrontDoor::CallWithJitterSeed(uint64_t jitter_seed,
                                      size_t coordinator,
                                      std::function<TxnSpec()> make_spec,
                                      double deadline_seconds,
                                      SvcCallback done) {
  const double now = cluster_->sim().now();
  const SiteId site = cluster_->site_id(coordinator);
  bool rate_limited = false;
  Status admit = admission_.Admit(now, &rate_limited);
  if (!admit.ok()) {
    Emit(TraceEventType::kSvcShed, site, TxnId(), rate_limited,
         admission_.inflight());
    if (done) {
      SvcResult result;
      result.status = std::move(admit);
      done(result);
    }
    return;
  }
  auto req = std::make_shared<Request>(jitter_seed);
  req->coordinator = coordinator;
  req->site = site;
  req->make_spec = std::move(make_spec);
  req->done = std::move(done);
  req->admit_time = now;
  req->deadline = now + deadline_seconds;
  req->prev_backoff = options_.initial_backoff;
  Emit(TraceEventType::kSvcAdmitted, site, TxnId(),
       /*flag=*/false, admission_.inflight());
  if (deadline_seconds <= 0.0) {
    // The budget was spent before we ever saw the request.
    Settle(req, DeadlineExceededError("deadline expired at submit"),
           nullptr);
    return;
  }
  req->deadline_timer = cluster_->sim().After(
      deadline_seconds, [this, req] { OnDeadline(req); });
  StartAttempt(req);
}

void SimFrontDoor::StartAttempt(const std::shared_ptr<Request>& req) {
  if (req->settled) {
    return;
  }
  ++req->attempts;
  if (req->attempts == 1) {
    budget_.OnAttempt();  // first attempts earn retry budget
  }
  req->last_txn = cluster_->Submit(
      req->coordinator, req->make_spec(),
      [this, req](const TxnResult& r) { OnTxnDone(req, r); });
}

void SimFrontDoor::OnTxnDone(const std::shared_ptr<Request>& req,
                             const TxnResult& r) {
  if (req->settled) {
    return;  // deadline fired while this attempt was in flight
  }
  if (r.committed()) {
    Settle(req, OkStatus(), &r);
    return;
  }
  if (req->attempts >= options_.max_attempts) {
    Settle(req, AbortedError("attempts exhausted: " + r.abort_reason), &r);
    return;
  }
  if (!budget_.TrySpend()) {
    Settle(req, ResourceExhaustedError("retry budget exhausted"), &r);
    return;
  }
  const double now = cluster_->sim().now();
  const double backoff = DecorrelatedJitterBackoff(
      &req->jitter, options_.initial_backoff, options_.max_backoff,
      req->prev_backoff);
  req->prev_backoff = backoff;
  if (now + backoff >= req->deadline) {
    // Tail-at-scale discipline: never start work that cannot finish
    // inside the deadline budget.
    Settle(req,
           DeadlineExceededError("no deadline budget left for a retry"),
           &r);
    return;
  }
  counters_.retries.fetch_add(1, std::memory_order_relaxed);
  Emit(TraceEventType::kSvcRetry, req->site, r.id, /*flag=*/true,
       static_cast<uint64_t>(req->attempts));
  cluster_->sim().After(backoff, [this, req] { StartAttempt(req); });
}

void SimFrontDoor::OnDeadline(const std::shared_ptr<Request>& req) {
  if (req->settled) {
    return;
  }
  Settle(req, DeadlineExceededError("deadline fired"), nullptr);
}

void SimFrontDoor::Settle(const std::shared_ptr<Request>& req,
                          Status status, const TxnResult* txn) {
  POLYV_CHECK(!req->settled);
  req->settled = true;
  if (req->deadline_timer != 0) {
    cluster_->sim().Cancel(req->deadline_timer);  // no-op if firing now
  }
  const double latency = cluster_->sim().now() - req->admit_time;
  latency_.Add(latency);
  admission_.Release();
  const TxnId txn_id = txn != nullptr ? txn->id : req->last_txn;
  if (status.ok()) {
    counters_.committed.fetch_add(1, std::memory_order_relaxed);
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    Emit(TraceEventType::kSvcDeadlineExceeded, req->site, txn_id,
         /*flag=*/false, static_cast<uint64_t>(req->attempts));
  } else if (status.code() == StatusCode::kResourceExhausted) {
    counters_.budget_exhausted.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.aborted.fetch_add(1, std::memory_order_relaxed);
  }
  SvcResult result;
  result.status = std::move(status);
  if (txn != nullptr) {
    result.txn = *txn;
  }
  result.attempts = req->attempts;
  result.latency = latency;
  if (req->done) {
    // Move the callback out so settling drops the last owning
    // reference cycle (req holds done, done's captures may hold req).
    SvcCallback done = std::move(req->done);
    done(result);
  }
}

SvcResult SimFrontDoor::CallAndRun(size_t coordinator,
                                   std::function<TxnSpec()> make_spec) {
  return CallAndRun(coordinator, std::move(make_spec),
                    options_.default_deadline);
}

SvcResult SimFrontDoor::CallAndRun(size_t coordinator,
                                   std::function<TxnSpec()> make_spec,
                                   double deadline_seconds) {
  std::optional<SvcResult> out;
  Call(coordinator, std::move(make_spec), deadline_seconds,
       [&out](const SvcResult& r) { out = r; });
  // The deadline timer guarantees settlement while events remain.
  while (!out.has_value() && cluster_->sim().Step()) {
  }
  POLYV_CHECK(out.has_value());
  return *out;
}

// ------------------------------------------------------------------
// ThreadFrontDoor
// ------------------------------------------------------------------

ThreadFrontDoor::ThreadFrontDoor(ThreadCluster* cluster, SvcOptions options)
    : cluster_(cluster),
      options_(options),
      admission_(options.admission),
      budget_(options.retry_budget),
      epoch_(std::chrono::steady_clock::now()) {}

double ThreadFrontDoor::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void ThreadFrontDoor::Emit(TraceEventType type, SiteId site, TxnId txn,
                           bool flag, uint64_t arg) {
  if (options_.trace == nullptr) {
    return;
  }
  TraceEvent event;
  event.time = Now();
  event.type = type;
  event.site = site;
  event.txn = txn;
  event.flag = flag;
  event.arg = arg;
  options_.trace->Emit(event);
}

SvcResult ThreadFrontDoor::Call(size_t coordinator,
                                std::function<TxnSpec()> make_spec) {
  return Call(coordinator, std::move(make_spec),
              options_.default_deadline);
}

SvcResult ThreadFrontDoor::Call(size_t coordinator,
                                std::function<TxnSpec()> make_spec,
                                double deadline_seconds) {
  const SiteId site = cluster_->site_id(coordinator);
  const double admit_time = Now();
  bool rate_limited = false;
  Status admit = admission_.Admit(admit_time, &rate_limited);
  SvcResult result;
  if (!admit.ok()) {
    Emit(TraceEventType::kSvcShed, site, TxnId(), rate_limited,
         admission_.inflight());
    result.status = std::move(admit);
    return result;
  }
  Emit(TraceEventType::kSvcAdmitted, site, TxnId(), /*flag=*/false,
       admission_.inflight());
  const double deadline = admit_time + deadline_seconds;
  Rng jitter(options_.seed +
             next_request_.fetch_add(1, std::memory_order_relaxed));
  double prev_backoff = options_.initial_backoff;
  TxnId last_txn;
  // Settlement bookkeeping shared by every exit path below.
  auto settle = [&](Status status,
                    const std::optional<TxnResult>& txn) -> SvcResult {
    const double latency = Now() - admit_time;
    latency_.Add(latency);
    admission_.Release();
    if (status.ok()) {
      counters_.committed.fetch_add(1, std::memory_order_relaxed);
    } else if (status.code() == StatusCode::kDeadlineExceeded) {
      counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      Emit(TraceEventType::kSvcDeadlineExceeded, site, last_txn,
           /*flag=*/false, static_cast<uint64_t>(result.attempts));
    } else if (status.code() == StatusCode::kResourceExhausted) {
      counters_.budget_exhausted.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.aborted.fetch_add(1, std::memory_order_relaxed);
    }
    result.status = std::move(status);
    result.txn = txn;
    result.latency = latency;
    return result;
  };
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    const double remaining = deadline - Now();
    if (remaining <= 0.0) {
      return settle(DeadlineExceededError("deadline expired"),
                    std::nullopt);
    }
    result.attempts = attempt;
    if (attempt == 1) {
      budget_.OnAttempt();
    }
    std::optional<TxnResult> r = cluster_->SubmitAndWait(
        coordinator, make_spec(), remaining);
    if (!r.has_value()) {
      // SubmitAndWait timed out: the deadline budget is gone even if
      // the transaction eventually resolves behind our back.
      return settle(DeadlineExceededError("deadline expired in flight"),
                    std::nullopt);
    }
    last_txn = r->id;
    if (r->committed()) {
      return settle(OkStatus(), r);
    }
    if (attempt >= options_.max_attempts) {
      return settle(
          AbortedError("attempts exhausted: " + r->abort_reason), r);
    }
    if (!budget_.TrySpend()) {
      return settle(ResourceExhaustedError("retry budget exhausted"), r);
    }
    const double backoff = DecorrelatedJitterBackoff(
        &jitter, options_.initial_backoff, options_.max_backoff,
        prev_backoff);
    prev_backoff = backoff;
    if (Now() + backoff >= deadline) {
      return settle(
          DeadlineExceededError("no deadline budget left for a retry"), r);
    }
    counters_.retries.fetch_add(1, std::memory_order_relaxed);
    Emit(TraceEventType::kSvcRetry, site, r->id, /*flag=*/true,
         static_cast<uint64_t>(attempt));
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
  POLYV_CHECK(false);  // the loop always settles via an exit path above
  return result;
}

}  // namespace polyvalue
