#include "src/svc/admission.h"

#include <algorithm>

namespace polyvalue {

namespace {

double DefaultBurst(const AdmissionController::Options& options) {
  if (options.burst > 0.0) {
    return options.burst;
  }
  return std::max(options.rate_limit / 10.0, 1.0);
}

}  // namespace

AdmissionController::AdmissionController(Options options)
    : options_(options), tokens_(DefaultBurst(options)) {}

Status AdmissionController::Admit(double now, bool* rate_limited) {
  if (rate_limited != nullptr) {
    *rate_limited = false;
  }
  MutexLock lock(&mu_);
  if (options_.max_inflight > 0 && inflight_ >= options_.max_inflight) {
    ++shed_capacity_;
    return ResourceExhaustedError("admission: in-flight cap reached");
  }
  if (options_.rate_limit > 0.0) {
    const double burst = DefaultBurst(options_);
    if (now > last_refill_) {
      tokens_ = std::min(burst,
                         tokens_ + (now - last_refill_) * options_.rate_limit);
    }
    last_refill_ = std::max(last_refill_, now);
    if (tokens_ < 1.0) {
      ++shed_rate_;
      if (rate_limited != nullptr) {
        *rate_limited = true;
      }
      return ResourceExhaustedError("admission: rate limit exceeded");
    }
    tokens_ -= 1.0;
  }
  ++inflight_;
  ++admitted_;
  return OkStatus();
}

void AdmissionController::Release() {
  MutexLock lock(&mu_);
  if (inflight_ > 0) {
    --inflight_;
  }
}

size_t AdmissionController::inflight() const {
  MutexLock lock(&mu_);
  return inflight_;
}

uint64_t AdmissionController::admitted() const {
  MutexLock lock(&mu_);
  return admitted_;
}

uint64_t AdmissionController::shed_rate() const {
  MutexLock lock(&mu_);
  return shed_rate_;
}

uint64_t AdmissionController::shed_capacity() const {
  MutexLock lock(&mu_);
  return shed_capacity_;
}

RetryBudget::RetryBudget(Options options)
    : options_(options),
      balance_(std::min(options.initial, options.cap)) {}

void RetryBudget::OnAttempt() {
  MutexLock lock(&mu_);
  balance_ = std::min(options_.cap, balance_ + options_.ratio);
}

bool RetryBudget::TrySpend() {
  MutexLock lock(&mu_);
  if (balance_ < 1.0) {
    ++denied_;
    return false;
  }
  balance_ -= 1.0;
  return true;
}

double RetryBudget::balance() const {
  MutexLock lock(&mu_);
  return balance_;
}

uint64_t RetryBudget::denied() const {
  MutexLock lock(&mu_);
  return denied_;
}

}  // namespace polyvalue
