add_test([=[GoldenTraceTest.Figure1FundsTransfer]=]  /root/repo/build-review/tests/golden_trace_test [==[--gtest_filter=GoldenTraceTest.Figure1FundsTransfer]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GoldenTraceTest.Figure1FundsTransfer]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-review/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  golden_trace_test_TESTS GoldenTraceTest.Figure1FundsTransfer)
