# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reservations "/root/repo/build-review/examples/reservations")
set_tests_properties(example_reservations PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_funds_transfer "/root/repo/build-review/examples/funds_transfer")
set_tests_properties(example_funds_transfer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inventory_control "/root/repo/build-review/examples/inventory_control")
set_tests_properties(example_inventory_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tcp_cluster "/root/repo/build-review/examples/tcp_cluster")
set_tests_properties(example_tcp_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_condition_tool "/root/repo/build-review/examples/condition_tool" "T1&T2 + T1&!T2")
set_tests_properties(example_condition_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_polysim_cli "/root/repo/build-review/examples/polysim_cli" "--u=5" "--f=0.01" "--warmup=100" "--measure=500")
set_tests_properties(example_polysim_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_polyvalue_repl "sh" "-c" "printf 'load 1 a 10\\nload 2 b 5\\ntransfer 0 a b 3\\nrun 1\\npeek a\\nstats\\nawait a\\nquit\\n' | /root/repo/build-review/examples/polyvalue_repl 3")
set_tests_properties(example_polyvalue_repl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;36;add_test;/root/repo/examples/CMakeLists.txt;0;")
