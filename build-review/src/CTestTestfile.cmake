# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("value")
subdirs("condition")
subdirs("poly")
subdirs("event")
subdirs("net")
subdirs("store")
subdirs("txn")
subdirs("system")
subdirs("model")
subdirs("sim")
subdirs("baseline")
