// Experiment X5 (extension): non-uniform access patterns.
//
// §4.2: "In a real system, the selection of items to participate in
// transactions is not likely to be uniform. Some items may participate
// in transactions much more frequently than others. This has the effect
// of reducing the effective size of the database."
//
// This bench makes the remark quantitative. With an 80/20-style hotspot
// (fraction h of the items receives probability p of the accesses), the
// birth term of the §4.1 model splits across the two populations, giving
// an effective item count
//
//     I_eff = 1 / (p²/(h·I) + (1-p)²/((1-h)·I))
//
// (the inverse Simpson/collision index). The bench sweeps skew, runs the
// exact simulation, and compares against the model evaluated at I_eff —
// showing the paper's "effective size" intuition holds almost exactly.
#include <cstdio>

#include "src/model/analytic.h"
#include "src/sim/poly_sim.h"

namespace polyvalue {
namespace {

double EffectiveItems(double items, double hot_fraction,
                      double hot_probability) {
  if (hot_probability <= 0.0 || hot_fraction <= 0.0) {
    return items;
  }
  const double hot_items = hot_fraction * items;
  const double cold_items = items - hot_items;
  const double p = hot_probability;
  return 1.0 /
         (p * p / hot_items + (1.0 - p) * (1.0 - p) / cold_items);
}

void RunSweep() {
  const double u = 10;
  const double f = 0.01;
  const double items = 10000;
  const double r = 0.01;
  const double d = 3;

  std::printf("Non-uniform access: hotspot skew vs effective database "
              "size\n");
  std::printf("(U=%.0f F=%.2f I=%.0f R=%.2f Y=0 D=%.0f; hot set = 10%% of "
              "items)\n\n", u, f, items, r, d);
  std::printf("%-14s %-9s %-12s %-12s %-12s\n", "hot access %", "I_eff",
              "model(I)", "model(I_eff)", "sim P");
  std::printf("%.*s\n", 62,
              "-----------------------------------------------------------"
              "---");
  for (double hot_probability : {0.0, 0.3, 0.5, 0.7, 0.9}) {
    const double effective =
        EffectiveItems(items, 0.10, hot_probability);

    ModelParams plain;
    plain.updates_per_second = u;
    plain.failure_probability = f;
    plain.items = items;
    plain.recovery_rate = r;
    plain.dependency_degree = d;
    ModelParams adjusted = plain;
    adjusted.items = effective;

    PolySimParams p;
    p.updates_per_second = u;
    p.failure_probability = f;
    p.items = static_cast<uint64_t>(items);
    p.recovery_rate = r;
    p.dependency_degree = d;
    p.hotspot_fraction = 0.10;
    p.hotspot_access_probability = hot_probability;
    p.warmup_seconds = 3000;
    p.measure_seconds = 12000;
    double total = 0;
    for (uint64_t seed : {7u, 77u, 777u}) {
      p.seed = seed;
      total += RunPolySim(p).average_polyvalues;
    }
    const double simulated = total / 3.0;

    const Prediction plain_pred = Predict(plain);
    const Prediction adjusted_pred = Predict(adjusted);
    char adjusted_str[24];
    if (adjusted_pred.stable) {
      std::snprintf(adjusted_str, sizeof(adjusted_str), "%10.2f",
                    adjusted_pred.steady_state);
    } else {
      std::snprintf(adjusted_str, sizeof(adjusted_str), "       inf");
    }
    std::printf("%-14.0f %-9.0f %-12.2f %-12s %-12.2f\n",
                hot_probability * 100, effective,
                plain_pred.steady_state, adjusted_str, simulated);
  }
  std::printf(
      "\nExpected shape: the uniform model under-predicts as skew grows; "
      "the model\nevaluated at I_eff tracks the simulation — non-uniform "
      "access behaves like a\nsmaller database, exactly the paper's "
      "remark. (Operators should size polyvalue\nbudgets by I_eff, not "
      "I.)\n");
}

}  // namespace
}  // namespace polyvalue

int main() {
  polyvalue::RunSweep();
  return 0;
}
