// Ablation: the in-doubt window length, three ways.
//
// §6 notes the polyvalue mechanism "can be combined with other atomic
// distributed update protocols to decrease the chance that polyvalues
// will be created." Two dials live in that design space:
//
//   * the engine's wait_timeout — how long a 2PC participant behaves
//     like blocking 2PC before switching to polyvalues
//     (wait_timeout -> 0: polyvalues on the slightest hiccup;
//      wait_timeout -> inf: classic blocking 2PC);
//   * Paxos Commit's paxos_failover_timeout — how long a prepared RM
//     waits for the decision before nudging a standby leader to finish
//     the tally (the window is then CLOSED by consensus, not worked
//     around with polyvalues).
//
// Both sweeps run the same fixed flapping-coordinator schedule. The 2PC
// sweep trades lock-hold time against polyvalue creation; the Paxos
// sweep shows the worst-case stalled window tracking the failover
// timeout itself — the knob bounds the exposure directly, and no
// polyvalues ever appear. The blocking baseline anchors both tables.
#include <cstdio>

#include "src/workload/transfer.h"

namespace polyvalue {
namespace {

WorkloadParams BaseParams() {
  WorkloadParams p;
  p.sites = 4;
  p.accounts_per_site = 24;
  p.initial_balance = 1000;
  p.txn_rate = 80;
  p.duration = 40;
  p.settle_time = 30;
  p.crash_site = 0;
  p.crash_time = 4;
  p.recover_time = 6;  // 2 s outages
  p.crash_cycles = 10;
  p.up_gap = 1.0;
  p.seed = 4321;
  p.min_delay = 0.01;
  p.max_delay = 0.02;
  p.engine.prepare_timeout = 0.3;
  p.engine.ready_timeout = 0.3;
  p.engine.inquiry_interval = 0.25;
  return p;
}

WorkloadParams PolyParams(double wait_timeout) {
  WorkloadParams p = BaseParams();
  p.engine.wait_timeout = wait_timeout;
  p.engine.policy = InDoubtPolicy::kPolyvalue;
  return p;
}

WorkloadParams BlockParams() {
  WorkloadParams p = BaseParams();
  p.engine.wait_timeout = 0.1;
  p.engine.policy = InDoubtPolicy::kBlock;
  return p;
}

WorkloadParams PaxosParams(double failover_timeout) {
  WorkloadParams p = BaseParams();
  p.engine.leg = ProtocolLeg::kPaxosCommit;
  p.engine.paxos_failover_timeout = failover_timeout;
  return p;
}

void PrintRow(const char* label, double dial, const WorkloadReport& r) {
  const double commit_pct =
      r.outage_submitted == 0
          ? 0.0
          : 100.0 * static_cast<double>(r.outage_committed) /
                static_cast<double>(r.outage_submitted);
  std::printf("%-13s %-9.2f | %-9llu %-9.1f | %-10.4f | %-9llu %-10llu "
              "%-7lld\n",
              label, dial,
              static_cast<unsigned long long>(r.outage_committed),
              commit_pct, r.metrics.wait_phase_max,
              static_cast<unsigned long long>(r.polyvalue_installs),
              static_cast<unsigned long long>(r.uncertain_outputs),
              static_cast<long long>(r.conservation_drift));
}

}  // namespace
}  // namespace polyvalue

int main() {
  using namespace polyvalue;
  std::printf("Ablation: in-doubt window dials under a flapping "
              "coordinator\n");
  std::printf("(2PC sweeps wait_timeout; Paxos Commit sweeps "
              "paxos_failover_timeout;\n blocking 2PC anchors both — its "
              "window is the whole outage)\n\n");
  std::printf("%-13s %-9s | %-9s %-9s | %-10s | %-9s %-10s %-7s\n",
              "protocol", "dial (s)", "out.comm", "commit%", "stall-max",
              "poly-inst", "uncertain", "drift");
  std::printf("%.*s\n", 84,
              "-----------------------------------------------------------"
              "-------------------------");
  PrintRow("block", 0.0, RunTransferWorkload(BlockParams()));
  std::printf("\n");
  for (double window : {0.05, 0.1, 0.2, 0.5, 1.0, 3.0}) {
    PrintRow("polyvalue", window, RunTransferWorkload(PolyParams(window)));
  }
  std::printf("\n");
  for (double failover : {0.1, 0.2, 0.5, 1.0}) {
    PrintRow("paxos_commit", failover,
             RunTransferWorkload(PaxosParams(failover)));
  }
  std::printf(
      "\nExpected shape: the blocking anchor's worst-case stall is the\n"
      "outage length. Shorter 2PC windows create more polyvalues and\n"
      "commit at least as much during outages; longer windows converge\n"
      "on the blocking baseline. The Paxos stall-max tracks the failover\n"
      "timeout (plus a recovery ballot's round trips) with zero\n"
      "polyvalues — the window is closed by consensus rather than\n"
      "tolerated. Drift is always 0 — every dial trades performance,\n"
      "never correctness. This is the §6 'combine with other protocols'\n"
      "design space.\n");
  return 0;
}
