// Ablation: the in-doubt window length (wait_timeout).
//
// §6 notes the polyvalue mechanism "can be combined with other atomic
// distributed update protocols to decrease the chance that polyvalues
// will be created." The engine's wait_timeout is exactly that dial: it
// is how long a participant behaves like blocking 2PC before switching
// to polyvalues.
//
//   wait_timeout -> 0     : polyvalues on the slightest hiccup
//                           (max availability, max polyvalue churn);
//   wait_timeout -> inf   : classic blocking 2PC.
//
// The sweep reports, for a fixed flapping-coordinator schedule, how the
// choice trades lock-hold time against polyvalue creation — the
// combined-protocol design space the conclusion sketches.
#include <cstdio>

#include "src/workload/transfer.h"

namespace polyvalue {
namespace {

WorkloadParams BaseParams(double wait_timeout) {
  WorkloadParams p;
  p.sites = 4;
  p.accounts_per_site = 24;
  p.initial_balance = 1000;
  p.txn_rate = 80;
  p.duration = 40;
  p.settle_time = 30;
  p.crash_site = 0;
  p.crash_time = 4;
  p.recover_time = 6;  // 2 s outages
  p.crash_cycles = 10;
  p.up_gap = 1.0;
  p.seed = 4321;
  p.min_delay = 0.01;
  p.max_delay = 0.02;
  p.engine.prepare_timeout = 0.3;
  p.engine.ready_timeout = 0.3;
  p.engine.wait_timeout = wait_timeout;
  p.engine.inquiry_interval = 0.25;
  p.engine.policy = InDoubtPolicy::kPolyvalue;
  return p;
}

}  // namespace
}  // namespace polyvalue

int main() {
  using namespace polyvalue;
  std::printf("Ablation: in-doubt window length (wait_timeout) under a "
              "flapping coordinator\n");
  std::printf("(polyvalue policy throughout; wait_timeout -> inf "
              "degenerates to blocking 2PC)\n\n");
  std::printf("%-12s | %-9s %-9s | %-9s %-10s %-7s\n", "window (s)",
              "out.comm", "commit%", "poly-inst", "uncertain", "drift");
  std::printf("%.*s\n", 66,
              "-----------------------------------------------------------"
              "-------");
  for (double window : {0.05, 0.1, 0.2, 0.5, 1.0, 3.0}) {
    const WorkloadReport r = RunTransferWorkload(BaseParams(window));
    const double commit_pct =
        r.outage_submitted == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.outage_committed) /
                  static_cast<double>(r.outage_submitted);
    std::printf("%-12.2f | %-9llu %-9.1f | %-9llu %-10llu %-7lld\n", window,
                static_cast<unsigned long long>(r.outage_committed),
                commit_pct,
                static_cast<unsigned long long>(r.polyvalue_installs),
                static_cast<unsigned long long>(r.uncertain_outputs),
                static_cast<long long>(r.conservation_drift));
  }
  std::printf(
      "\nExpected shape: shorter windows create more polyvalues and commit\n"
      "at least as much during outages; longer windows converge on the\n"
      "blocking baseline (fewer installs, availability paid in lock-hold\n"
      "time). Drift is always 0 — the dial trades performance, never\n"
      "correctness. This is the §6 'combine with other protocols' space.\n");
  return 0;
}
