// Regenerates Table 2 of the paper: "Results of Simulating the Polyvalue
// Mechanism" — simulated steady-state polyvalue count vs the analytic
// prediction for six parameter rows (I = 10,000, R = 0.01 throughout).
//
// Our rows print the paper's predicted/actual columns followed by our own
// model prediction and simulation measurement (averaged over seeds). The
// qualitative claim to reproduce: simulation agrees with the model where
// P is small, and generally comes in somewhat BELOW the prediction (the
// first-order model over-counts).
#include <cstdio>

#include "src/model/analytic.h"
#include "src/sim/poly_sim.h"

namespace polyvalue {
namespace {

struct Row {
  double u, f, y, d;
  double paper_predicted;
  double paper_actual;
};

constexpr Row kRows[] = {
    {2, 0.01, 0, 1, 2.04, 2.00},  {5, 0.01, 0, 1, 5.26, 2.71},
    {10, 0.01, 0, 1, 11.11, 9.5}, {10, 0.001, 0, 1, 1.11, 0.74},
    {10, 0.01, 0, 5, 20.0, 19.8}, {10, 0.01, 1, 5, 16.7, 15.8},
};

void PrintTable2() {
  std::printf("Table 2: Results of Simulating the Polyvalue Mechanism\n");
  std::printf("(I = 10,000  R = 0.01  warmup 2000 s, measured 10,000 s, "
              "3 seeds)\n\n");
  std::printf("%-4s %-7s %-3s %-3s | %-10s %-10s | %-10s %-10s\n", "U", "F",
              "Y", "D", "paper pred", "paper act.", "our model",
              "our sim");
  std::printf("%.*s\n", 66,
              "-----------------------------------------------------------"
              "--------------------");
  for (const Row& row : kRows) {
    PolySimParams p;
    p.updates_per_second = row.u;
    p.failure_probability = row.f;
    p.items = 10000;
    p.recovery_rate = 0.01;
    p.overwrite_probability = row.y;
    p.dependency_degree = row.d;
    p.warmup_seconds = 2000;
    p.measure_seconds = 10000;

    ModelParams m;
    m.updates_per_second = row.u;
    m.failure_probability = row.f;
    m.items = 10000;
    m.recovery_rate = 0.01;
    m.overwrite_probability = row.y;
    m.dependency_degree = row.d;
    const Prediction pred = Predict(m);

    double total = 0;
    for (uint64_t seed : {101u, 202u, 303u}) {
      p.seed = seed;
      total += RunPolySim(p).average_polyvalues;
    }
    const double simulated = total / 3.0;
    std::printf("%-4.0f %-7.3f %-3.0f %-3.0f | %-10.2f %-10.2f | %-10.2f "
                "%-10.2f\n",
                row.u, row.f, row.y, row.d, row.paper_predicted,
                row.paper_actual, pred.steady_state, simulated);
  }
  std::printf("\nShape checks: sim tracks model; sim <= model in most rows "
              "(first-order\nmodel over-counts), exactly as the paper "
              "reports.\n");
}

void PrintLargeDatabaseBonus() {
  // The paper: "The implementation of the simulation restricted the range
  // of the parameters ... to relatively small databases." Ours does not —
  // demonstrate the typical-database row of Table 1 (I = 10^6) by direct
  // simulation.
  PolySimParams p;
  p.updates_per_second = 10;
  p.failure_probability = 1e-4;
  p.items = 1000000;
  p.recovery_rate = 1e-3;
  p.overwrite_probability = 0;
  p.dependency_degree = 1;
  p.seed = 99;
  p.warmup_seconds = 10000;
  p.measure_seconds = 50000;
  ModelParams m;
  m.updates_per_second = p.updates_per_second;
  m.failure_probability = p.failure_probability;
  m.items = static_cast<double>(p.items);
  m.recovery_rate = p.recovery_rate;
  m.overwrite_probability = p.overwrite_probability;
  m.dependency_degree = p.dependency_degree;
  const PolySimStats stats = RunPolySim(p);
  std::printf("\nBonus (beyond the paper's simulator): Table 1 'typical "
              "database' row\nsimulated directly at I = 10^6: model %.2f, "
              "simulated %.2f (peak %.0f)\n",
              Predict(m).steady_state, stats.average_polyvalues,
              stats.peak_polyvalues);
}

}  // namespace
}  // namespace polyvalue

int main() {
  polyvalue::PrintTable2();
  polyvalue::PrintLargeDatabaseBonus();
  return 0;
}
