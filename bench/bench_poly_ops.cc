// Experiment X2 (extension): micro-costs of the polyvalue machinery —
// the "additional storage and processing" §4 argues stays small.
//
// google-benchmark microbenches over width sweeps:
//   * polyvalue construction (InstallUncertain) at depth d,
//   * reduction (outcome substitution + re-canonicalisation),
//   * lifted arithmetic across alternative counts,
//   * polytransaction execution fan-out,
//   * condition algebra (And/Or over k variables, Blake canonicalisation),
//   * exact complete/disjoint validation (the BDD-backed debug check),
//   * wire codec round trips.
#include <benchmark/benchmark.h>

#include "src/net/codec.h"
#include "src/poly/poly_ops.h"
#include "src/poly/polyvalue.h"
#include "src/txn/polytxn.h"

namespace polyvalue {
namespace {

// A polyvalue stacked `depth` deep (depth+1 alternatives).
PolyValue Stacked(int depth) {
  PolyValue pv = PolyValue::Certain(Value::Int(0));
  for (int i = 0; i < depth; ++i) {
    pv = PolyValue::InstallUncertain(
        TxnId(i + 1), PolyValue::Certain(Value::Int(i + 1)), pv);
  }
  return pv;
}

void BM_InstallUncertain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const PolyValue previous = Stacked(depth);
  const PolyValue computed = PolyValue::Certain(Value::Int(999));
  uint64_t txn = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PolyValue::InstallUncertain(TxnId(txn++), computed, previous));
  }
  state.SetLabel(std::to_string(depth + 1) + " alternatives");
}
BENCHMARK(BM_InstallUncertain)->Arg(0)->Arg(1)->Arg(3)->Arg(7);

void BM_Reduce(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const PolyValue pv = Stacked(depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pv.Reduce(TxnId(depth), true));
  }
}
BENCHMARK(BM_Reduce)->Arg(1)->Arg(3)->Arg(7);

void BM_ReduceAllToCertain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const PolyValue pv = Stacked(depth);
  std::unordered_map<TxnId, bool> outcomes;
  for (int i = 0; i < depth; ++i) {
    outcomes.emplace(TxnId(i + 1), (i % 2) == 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pv.ReduceAll(outcomes));
  }
}
BENCHMARK(BM_ReduceAllToCertain)->Arg(1)->Arg(3)->Arg(7);

void BM_LiftedAdd(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const PolyValue a = Stacked(depth);
  const PolyValue b = PolyValue::Certain(Value::Int(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PolyAdd(a, b));
  }
}
BENCHMARK(BM_LiftedAdd)->Arg(1)->Arg(3)->Arg(7);

void BM_LiftedAddBothUncertain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const PolyValue a = Stacked(depth);
  // Independent transaction set for b: cross product of alternatives.
  PolyValue b = PolyValue::Certain(Value::Int(0));
  for (int i = 0; i < depth; ++i) {
    b = PolyValue::InstallUncertain(
        TxnId(100 + i), PolyValue::Certain(Value::Int(50 + i)), b);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PolyAdd(a, b));
  }
}
BENCHMARK(BM_LiftedAddBothUncertain)->Arg(1)->Arg(2)->Arg(3);

void BM_PolyTxnExecute(benchmark::State& state) {
  const int uncertain_inputs = static_cast<int>(state.range(0));
  std::map<ItemKey, PolyValue> inputs;
  for (int i = 0; i < uncertain_inputs; ++i) {
    inputs.emplace(
        "k" + std::to_string(i),
        PolyValue::InstallUncertain(TxnId(i + 1),
                                    PolyValue::Certain(Value::Int(i)),
                                    PolyValue::Certain(Value::Int(-i))));
  }
  const TxnLogic logic = [](const TxnReads& reads) {
    TxnEffect e;
    int64_t sum = 0;
    for (const auto& [key, value] : reads.All()) {
      sum += value.int_value();
    }
    e.writes["sum"] = Value::Int(sum);
    return e;
  };
  PolyTxnOptions options;
  options.max_alternatives = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExecutePolyTransaction(inputs, {}, logic, options));
  }
  state.SetLabel(std::to_string(1 << uncertain_inputs) + " alternatives");
}
BENCHMARK(BM_PolyTxnExecute)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_ConditionAndOr(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  Condition a = Condition::True();
  Condition b = Condition::True();
  for (int i = 0; i < vars; ++i) {
    a = Condition::And(a, (i % 2) ? Condition::Committed(TxnId(i + 1))
                                  : Condition::Aborted(TxnId(i + 1)));
    b = Condition::Or(b, Condition::Committed(TxnId(i + 50)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Condition::And(a, b));
    benchmark::DoNotOptimize(Condition::Or(a, b));
  }
}
BENCHMARK(BM_ConditionAndOr)->Arg(2)->Arg(4)->Arg(8);

void BM_ValidateCompleteDisjoint(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const PolyValue pv = Stacked(depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pv.Validate());
  }
  state.SetLabel(std::to_string(depth) + " txn deps (exact check)");
}
BENCHMARK(BM_ValidateCompleteDisjoint)->Arg(2)->Arg(4)->Arg(8);

void BM_CodecRoundTrip(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const PolyValue pv = Stacked(depth);
  for (auto _ : state) {
    ByteWriter w;
    EncodePolyValue(pv, &w);
    ByteReader r(w.buffer());
    benchmark::DoNotOptimize(DecodePolyValue(&r));
  }
  ByteWriter size_probe;
  EncodePolyValue(pv, &size_probe);
  state.SetLabel(std::to_string(size_probe.size()) + " bytes");
}
BENCHMARK(BM_CodecRoundTrip)->Arg(1)->Arg(3)->Arg(7);

void BM_CertainFastPath(benchmark::State& state) {
  // The cost a failure-free database pays: operating on certain values
  // through the polyvalue interface.
  const PolyValue a = PolyValue::Certain(Value::Int(41));
  const PolyValue b = PolyValue::Certain(Value::Int(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PolyAdd(a, b));
  }
}
BENCHMARK(BM_CertainFastPath);

}  // namespace
}  // namespace polyvalue

BENCHMARK_MAIN();
