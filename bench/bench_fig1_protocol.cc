// Regenerates Figure 1 of the paper: the update-protocol state diagram.
//
// Figure 1 is a three-state participant machine (idle, compute, wait)
// with six transitions. We regenerate it by *driving* the real engine
// through every edge on the deterministic cluster, recording which edges
// were exercised, and printing the machine as a transition table. A
// latency section reports the virtual-time cost of the commit path and of
// the in-doubt path (wait-timeout -> polyvalue install).
#include <cstdio>
#include <optional>

#include "src/obs/audit.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.prepare_timeout = 0.25;
  config.ready_timeout = 0.25;
  config.wait_timeout = 0.05;
  config.inquiry_interval = 0.2;
  return config;
}

SimCluster::Options Options() {
  SimCluster::Options options;
  options.site_count = 3;
  options.engine = FastConfig();
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  return options;
}

TxnSpec WriteTxn(const ItemKey& key, SiteId site, int64_t delta) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key, delta](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + delta);
    return e;
  });
  return spec;
}

struct Edge {
  const char* from;
  const char* trigger;
  const char* to;
  const char* action;
  bool exercised;
};

// Edge 1+2+3: idle -> compute (PREPARE), compute -> wait (WRITE_REQ:
// results computed promptly, READY sent), wait -> idle (COMPLETE:
// install). Measures the commit path latency.
double ExerciseCommitPath(bool* ok, VectorTraceSink* trace) {
  SimCluster::Options options = Options();
  options.trace = trace;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  const double start = cluster.sim().now();
  const auto result = cluster.SubmitAndRun(0, WriteTxn("x", SiteId(2), 1));
  const double latency = cluster.sim().now() - start;
  cluster.RunFor(1.0);
  *ok = result.has_value() && result->committed() &&
        cluster.site(1).Peek("x").value().certain_value() == Value::Int(1);
  return latency;
}

// Edge 4: wait -> idle via ABORT (discard results).
bool ExerciseAbortEdge(VectorTraceSink* trace) {
  SimCluster::Options options = Options();
  options.trace = trace;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  TxnSpec spec;
  spec.ReadWrite("x", SiteId(2));
  // Also involve a second site that refuses (missing item) so the
  // coordinator aborts after site 1 computed.
  spec.Read("ghost", SiteId(3));
  spec.Logic([](const TxnReads&) { return TxnEffect{}; });
  const auto result = cluster.SubmitAndRun(0, std::move(spec));
  cluster.RunFor(1.0);
  return result.has_value() && !result->committed() &&
         cluster.site(1).Peek("x").value().certain_value() ==
             Value::Int(0) &&
         cluster.site(1).store().locked_count() == 0;
}

// Edge 5: compute -> idle (failure before results / abort in compute).
bool ExerciseComputeDiscardEdge(VectorTraceSink* trace) {
  SimCluster::Options options = Options();
  options.trace = trace;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  TxnSpec spec = WriteTxn("x", SiteId(2), 1);
  cluster.Submit(0, std::move(spec), [](const TxnResult&) {});
  // Crash the coordinator immediately after PREPARE goes out: site 1
  // enters compute, never gets WRITE_REQ, and must discard + unlock.
  cluster.sim().At(0.015, [&cluster] { cluster.CrashSite(0); });
  cluster.RunFor(2.0);  // compute-phase timeout = prepare+ready = 0.5 s
  return cluster.site(1).store().locked_count() == 0 &&
         cluster.site(1).Peek("x").value().is_certain();
}

// Edge 6: wait -> idle via the wait timeout — the polyvalue edge.
double ExercisePolyvalueEdge(bool* ok, VectorTraceSink* trace) {
  SimCluster::Options options = Options();
  options.trace = trace;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  cluster.Submit(0, WriteTxn("x", SiteId(2), 1), [](const TxnResult&) {});
  cluster.sim().At(0.035, [&cluster] { cluster.CrashSite(0); });
  const double start = cluster.sim().now();
  // Run until the item becomes uncertain.
  double installed_at = -1;
  while (cluster.sim().now() < 5.0) {
    if (!cluster.sim().Step()) {
      break;
    }
    if (installed_at < 0 &&
        !cluster.site(1).Peek("x").value().is_certain()) {
      installed_at = cluster.sim().now();
    }
  }
  *ok = installed_at > 0 &&
        cluster.site(1).store().locked_count() == 0;
  return installed_at - start;
}

// Runs the auditor over one edge's trace; prints and fails on any
// protocol-invariant violation.
bool AuditEdge(const char* name, const VectorTraceSink& trace,
               AuditOptions options = {}) {
  const Status status = TraceAuditor::Check(trace.Snapshot(), options);
  if (status.ok()) {
    std::printf("  %-28s %4zu events, invariant-clean\n", name,
                trace.size());
    return true;
  }
  std::printf("  %-28s AUDIT FAILED:\n%s\n", name, status.message().c_str());
  return false;
}

}  // namespace
}  // namespace polyvalue

int main() {
  using namespace polyvalue;

  VectorTraceSink commit_trace, abort_trace, discard_trace, poly_trace;
  bool commit_ok = false;
  const double commit_latency = ExerciseCommitPath(&commit_ok, &commit_trace);
  const bool abort_ok = ExerciseAbortEdge(&abort_trace);
  const bool discard_ok = ExerciseComputeDiscardEdge(&discard_trace);
  bool poly_ok = false;
  const double poly_latency = ExercisePolyvalueEdge(&poly_ok, &poly_trace);

  Edge edges[] = {
      {"idle", "PREPARE received", "compute",
       "lock items, compute results", commit_ok},
      {"compute", "results computed promptly (WRITE_REQ)", "wait",
       "send READY to coordinator", commit_ok},
      {"compute", "failure prevents prompt computation / ABORT", "idle",
       "discard computation", discard_ok && abort_ok},
      {"wait", "COMPLETE received", "idle", "install results", commit_ok},
      {"wait", "ABORT received", "idle", "discard results", abort_ok},
      {"wait", "neither received promptly (timeout)", "idle",
       "install POLYVALUES for updated items", poly_ok},
  };

  std::printf("Figure 1: The Update Protocol States — regenerated from "
              "the running engine\n\n");
  std::printf("%-9s %-45s %-9s %s\n", "state", "trigger", "next", "action");
  std::printf("%.*s\n", 100,
              "-----------------------------------------------------------"
              "---------------------------------------------");
  bool all = true;
  for (const Edge& edge : edges) {
    std::printf("%-9s %-45s %-9s %s %s\n", edge.from, edge.trigger, edge.to,
                edge.action, edge.exercised ? "[exercised OK]" : "[FAILED]");
    all &= edge.exercised;
  }

  std::printf("\nPath latencies (virtual time, 10 ms links, wait timeout "
              "50 ms):\n");
  std::printf("  commit path  (idle->compute->wait->idle): %5.0f ms\n",
              commit_latency * 1e3);
  std::printf("  in-doubt path (… wait --timeout--> idle + polyvalue "
              "install): %5.0f ms\n",
              poly_latency * 1e3);
  // Every exercised trace must satisfy the protocol invariants. The
  // polyvalue edge deliberately leaves uncertainty outstanding (its
  // coordinator never recovers), so quiescence is not asserted there.
  std::printf("\nTrace audit (protocol invariants A1-A8 over each edge's "
              "recorded trace):\n");
  bool audits_ok = true;
  audits_ok &= AuditEdge("commit path", commit_trace);
  audits_ok &= AuditEdge("abort edge", abort_trace);
  audits_ok &= AuditEdge("compute-discard edge", discard_trace);
  AuditOptions in_doubt;
  in_doubt.expect_quiescent = false;
  audits_ok &= AuditEdge("polyvalue edge (in doubt)", poly_trace, in_doubt);
  all &= audits_ok;

  std::printf("\n%s\n", all ? "All six Figure-1 edges exercised by the real "
                              "protocol engine."
                            : "SOME EDGES FAILED — see above.");
  return all ? 0 : 1;
}
