// Ablation: lock-conflict policy under contention (no-wait vs wait-die).
//
// The engine resolves PREPARE lock conflicts either by immediate refusal
// (kNoWait — the simplest deadlock-free discipline) or by wait-die
// queuing (kWaitDie — older transactions wait for younger holders,
// younger ones die; waits only point old→young so deadlock remains
// impossible). This bench sweeps contention (transactions per second
// against a small hot set, with simulated computation widening the lock
// hold time) and reports goodput under each policy.
#include <cstdio>
#include <string>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

struct Outcome {
  int committed = 0;
  int aborted = 0;
  uint64_t waits = 0;
  uint64_t resumes = 0;
};

Outcome Run(LockWaitPolicy policy, double rate, int hot_items) {
  SimCluster::Options options;
  options.site_count = 3;
  options.engine.lock_wait = policy;
  options.engine.prepare_timeout = 3.0;
  options.engine.ready_timeout = 3.0;
  options.engine.execution_delay = 0.05;  // 50 ms of computation per txn
  options.engine.enable_local_fast_path = false;
  options.min_delay = 0.005;
  options.max_delay = 0.005;
  options.seed = 9;
  SimCluster cluster(options);
  for (int a = 0; a < hot_items; ++a) {
    cluster.Load(1, "acct" + std::to_string(a), Value::Int(1000));
  }
  Rng rng(1234);
  Outcome outcome;
  std::function<void()> pump = [&] {
    if (cluster.sim().now() > 30.0) {
      return;
    }
    cluster.sim().After(rng.NextExponential(1.0 / rate), [&] {
      pump();
      const int from = rng.NextBelow(hot_items);
      int to = rng.NextBelow(hot_items);
      if (to == from) {
        to = (to + 1) % hot_items;
      }
      TxnSpec spec;
      const ItemKey from_key = "acct" + std::to_string(from);
      const ItemKey to_key = "acct" + std::to_string(to);
      spec.ReadWrite(from_key, cluster.site_id(1));
      spec.ReadWrite(to_key, cluster.site_id(1));
      spec.Logic([from_key, to_key](const TxnReads& reads) {
        TxnEffect e;
        e.writes[from_key] = Value::Int(reads.IntAt(from_key) - 1);
        e.writes[to_key] = Value::Int(reads.IntAt(to_key) + 1);
        return e;
      });
      cluster.Submit(rng.NextBelow(3), std::move(spec),
                     [&outcome](const TxnResult& r) {
                       r.committed() ? ++outcome.committed
                                     : ++outcome.aborted;
                     });
    });
  };
  pump();
  cluster.RunFor(60.0);
  const EngineMetrics m = cluster.TotalMetrics();
  outcome.waits = m.lock_waits;
  outcome.resumes = m.lock_wait_resumes;
  return outcome;
}

}  // namespace
}  // namespace polyvalue

int main() {
  using namespace polyvalue;
  std::printf("Lock-conflict policy under contention (8 hot items, 50 ms "
              "computation,\n30 s offered load; no client retries — raw "
              "first-attempt goodput)\n\n");
  std::printf("%-8s | %-22s | %-30s\n", "", "no-wait", "wait-die");
  std::printf("%-8s | %-10s %-10s | %-10s %-10s %-8s\n", "txn/s",
              "commit", "abort", "commit", "abort", "waits");
  std::printf("%.*s\n", 66,
              "-----------------------------------------------------------"
              "-------");
  for (double rate : {5.0, 10.0, 20.0, 40.0}) {
    const Outcome no_wait = Run(LockWaitPolicy::kNoWait, rate, 8);
    const Outcome wait_die = Run(LockWaitPolicy::kWaitDie, rate, 8);
    std::printf("%-8.0f | %-10d %-10d | %-10d %-10d %-8llu\n", rate,
                no_wait.committed, no_wait.aborted, wait_die.committed,
                wait_die.aborted,
                static_cast<unsigned long long>(wait_die.waits));
  }
  std::printf(
      "\nExpected shape: as contention rises, wait-die converts a slice "
      "of the\nno-wait aborts into successful (delayed) commits — the "
      "classic goodput\nwin of ordered waiting, with deadlock-freedom "
      "preserved by construction.\n");
  return 0;
}
