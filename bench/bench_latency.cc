// Open-loop latency/goodput sweep through the serving front door.
//
// A Poisson arrival process (open loop: arrivals do not wait for
// completions, as real clients do not) is swept across the admission
// controller's configured capacity, from 0.25x to 4x. For each offered
// load the bench reports goodput (commits per second), shed rate, and
// the latency distribution (p50/p95/p99/p99.9) of everything admitted.
//
// A control sweep with admission disabled shows what overload looks
// like without a front door. The engine aborts lock-conflict losers
// immediately (both lock-wait policies), so raw goodput does not
// collapse — the cluster behaves as a loss system — but the request
// SUCCESS RATE does: past saturation an ever-larger fraction of
// requests burn their full retry schedule and fail anyway, slowly and
// indistinguishably from any other abort. The front door pins goodput
// at the configured capacity and converts the same overload into
// instant refusals typed RESOURCE_EXHAUSTED — backpressure a client
// can act on — while admitted requests keep their flat latency curve.
//
// Everything runs on the deterministic simulator in VIRTUAL time, so
// the curve is a pure function of the seed — wall-clock speed of the
// machine running the bench does not move a single number. Results go
// to stdout as a table and to BENCH_latency.json (override the path
// with POLYV_LATENCY_JSON) for CI to archive.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/svc/front_door.h"

namespace polyvalue {
namespace {

// Capacity in the simulator is bounded by lock contention on the hot
// set (the protocol holds an item's lock for ~2 network round trips),
// not by CPU — which is exactly the regime admission control is for.
constexpr int kHotItems = 4;
constexpr double kRateLimit = 300.0;   // admitted requests per second
constexpr size_t kMaxInflight = 24;
constexpr double kDeadline = 0.5;      // seconds
constexpr double kDuration = 4.0;      // virtual seconds per point
constexpr uint64_t kSeed = 7;

TxnSpec Bump(const ItemKey& key, SiteId site) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + 1);
    return e;
  });
  return spec;
}

struct Point {
  double offered_rps = 0.0;
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t committed = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t budget_exhausted = 0;
  uint64_t aborted = 0;
  uint64_t retries = 0;
  double goodput = 0.0;           // commits per virtual second
  double shed_fraction = 0.0;     // of offered
  double success_fraction = 0.0;  // committed / offered
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

Point RunPoint(double offered_rps, bool admission_on) {
  SimCluster::Options options;
  options.site_count = 2;
  options.seed = kSeed;
  // Wait-die: older requesters queue briefly instead of aborting, which
  // lifts commit rates a little under moderate contention; overload
  // behaviour is the same loss-system shape as kNoWait.
  options.engine.lock_wait = LockWaitPolicy::kWaitDie;
  SimCluster cluster(options);
  for (int i = 0; i < kHotItems; ++i) {
    cluster.Load(1, "h" + std::to_string(i), Value::Int(0));
  }
  SvcOptions svc;
  if (admission_on) {
    svc.admission.rate_limit = kRateLimit;
    svc.admission.max_inflight = kMaxInflight;
  }
  svc.default_deadline = kDeadline;
  svc.initial_backoff = 0.004;
  svc.max_backoff = 0.05;
  svc.seed = kSeed ^ 0x5eedu;
  SimFrontDoor door(&cluster, svc);

  Rng arrivals(kSeed);
  Rng pick(kSeed ^ 0xbeefu);
  uint64_t offered = 0;
  double t = arrivals.NextExponential(1.0 / offered_rps);
  while (t < kDuration) {
    const std::string key =
        "h" + std::to_string(pick.NextBelow(kHotItems));
    cluster.sim().At(t, [&door, &cluster, key] {
      door.Call(0, [&cluster, key] {
        return Bump(key, cluster.site_id(1));
      });
    });
    ++offered;
    t += arrivals.NextExponential(1.0 / offered_rps);
  }
  cluster.RunAll();

  Point point;
  point.offered_rps = offered_rps;
  point.offered = offered;
  point.admitted = door.admission().admitted();
  point.committed = door.counters().committed.load();
  point.shed = door.admission().shed();
  point.deadline_exceeded = door.counters().deadline_exceeded.load();
  point.budget_exhausted = door.counters().budget_exhausted.load();
  point.aborted = door.counters().aborted.load();
  point.retries = door.counters().retries.load();
  point.goodput = static_cast<double>(point.committed) / kDuration;
  point.shed_fraction = offered == 0
                            ? 0.0
                            : static_cast<double>(point.shed) /
                                  static_cast<double>(offered);
  point.success_fraction = offered == 0
                               ? 0.0
                               : static_cast<double>(point.committed) /
                                     static_cast<double>(offered);
  const LogHistogram& latency = door.latency();
  point.p50_ms = latency.Percentile(50) * 1e3;
  point.p95_ms = latency.Percentile(95) * 1e3;
  point.p99_ms = latency.Percentile(99) * 1e3;
  point.p999_ms = latency.Percentile(99.9) * 1e3;
  return point;
}

void PrintTable(const char* title, const std::vector<Point>& points) {
  std::printf("\n%s\n\n", title);
  std::printf("%9s %8s %8s %8s %8s %9s %8s %8s %8s %9s\n", "offered/s",
              "goodput", "succ%", "shed%", "retries", "p50 ms", "p95 ms",
              "p99 ms", "p99.9ms", "committed");
  std::printf("%.*s\n", 92,
              "----------------------------------------------------------"
              "----------------------------------");
  for (const Point& p : points) {
    std::printf(
        "%9.0f %8.1f %7.1f%% %7.1f%% %8llu %9.2f %8.2f %8.2f %8.2f %9llu\n",
        p.offered_rps, p.goodput, 100.0 * p.success_fraction,
        100.0 * p.shed_fraction, static_cast<unsigned long long>(p.retries),
        p.p50_ms, p.p95_ms, p.p99_ms, p.p999_ms,
        static_cast<unsigned long long>(p.committed));
  }
}

void AppendPoints(std::string* out, const std::vector<Point>& points) {
  char buf[512];
  *out += "[";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"offered_rps\": %.1f, \"offered\": %llu, "
        "\"admitted\": %llu, \"committed\": %llu, \"shed\": %llu, "
        "\"aborted\": %llu, \"retries\": %llu, "
        "\"deadline_exceeded\": %llu, \"budget_exhausted\": %llu, "
        "\"goodput\": %.3f, \"shed_fraction\": %.4f, "
        "\"success_fraction\": %.4f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"p999_ms\": %.3f}",
        i == 0 ? "" : ",", p.offered_rps,
        static_cast<unsigned long long>(p.offered),
        static_cast<unsigned long long>(p.admitted),
        static_cast<unsigned long long>(p.committed),
        static_cast<unsigned long long>(p.shed),
        static_cast<unsigned long long>(p.aborted),
        static_cast<unsigned long long>(p.retries),
        static_cast<unsigned long long>(p.deadline_exceeded),
        static_cast<unsigned long long>(p.budget_exhausted), p.goodput,
        p.shed_fraction, p.success_fraction, p.p50_ms, p.p95_ms, p.p99_ms,
        p.p999_ms);
    *out += buf;
  }
  *out += "\n  ]";
}

int Run() {
  const std::vector<double> multipliers = {0.25, 0.5, 0.75, 1.0,
                                           1.5,  2.0, 3.0,  4.0};
  const size_t idx_2x = 5;  // multipliers[5] == 2.0, the headline point
  std::vector<Point> with_admission;
  std::vector<Point> without_admission;
  for (double m : multipliers) {
    with_admission.push_back(RunPoint(m * kRateLimit, true));
    without_admission.push_back(RunPoint(m * kRateLimit, false));
  }

  std::printf("Open-loop Poisson sweep, %d hot items, rate limit %.0f/s, "
              "inflight cap %zu,\ndeadline %.0f ms, %g virtual s per "
              "point, seed %llu (fully deterministic)\n",
              kHotItems, kRateLimit, kMaxInflight, kDeadline * 1e3,
              kDuration, static_cast<unsigned long long>(kSeed));
  PrintTable("WITH admission control (token bucket + inflight cap)",
             with_admission);
  PrintTable("WITHOUT admission control (every arrival enters)",
             without_admission);

  // The headline numbers: saturation goodput and what survives at 2x.
  double peak = 0.0;
  for (const Point& p : with_admission) {
    peak = std::max(peak, p.goodput);
  }
  const Point& at_2x = with_admission[idx_2x];
  const Point& at_2x_naked = without_admission[idx_2x];
  const double retained = peak > 0.0 ? at_2x.goodput / peak : 0.0;
  std::printf(
      "\npeak goodput %.1f/s; at 2x offered load goodput is %.1f/s with "
      "admission (%.0f%% of\npeak; the other %.0f%% of arrivals were "
      "refused instantly, typed RESOURCE_EXHAUSTED).\nWithout the front "
      "door the same 2x load commits %.1f/s but per-request success\n"
      "drops to %.0f%% — the failures burned %llu retries before "
      "aborting, indistinguishable\nfrom any other abort.\n",
      peak, at_2x.goodput, 100.0 * retained, 100.0 * at_2x.shed_fraction,
      at_2x_naked.goodput, 100.0 * at_2x_naked.success_fraction,
      static_cast<unsigned long long>(at_2x_naked.retries));

  std::string json = "{\n  \"config\": {";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"rate_limit\": %.1f, \"max_inflight\": %zu, "
                "\"hot_items\": %d, \"deadline_s\": %.3f, "
                "\"duration_s\": %.1f, \"seed\": %llu},\n",
                kRateLimit, kMaxInflight, kHotItems, kDeadline, kDuration,
                static_cast<unsigned long long>(kSeed));
  json += buf;
  json += "  \"with_admission\": ";
  AppendPoints(&json, with_admission);
  json += ",\n  \"without_admission\": ";
  AppendPoints(&json, without_admission);
  std::snprintf(buf, sizeof(buf),
                ",\n  \"peak_goodput\": %.3f,\n"
                "  \"goodput_at_2x\": %.3f,\n"
                "  \"retained_fraction_at_2x\": %.4f\n}\n",
                peak, at_2x.goodput, retained);
  json += buf;

  const char* env = std::getenv("POLYV_LATENCY_JSON");
  const std::string path = env != nullptr ? env : "BENCH_latency.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::printf("\nlatency JSON written to %s\n", path.c_str());

  // Guard rail for CI: the run must demonstrate no overload collapse.
  if (retained < 0.7) {
    std::fprintf(stderr,
                 "FAIL: goodput at 2x offered load retained only %.0f%% "
                 "of peak\n",
                 100.0 * retained);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace polyvalue

int main() { return polyvalue::Run(); }
