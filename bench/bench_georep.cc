// Geo-replication bench: local-read vs primary-read latency and
// availability under full region failure.
//
// Topology: 3 regions ("r0".."r2") x 3 sites, WAN-shaped links
// (sub-ms in region, 30-80 ms one-way across regions), and a k=3
// replica catalog placed by the seeded consistent-hash policy — every
// logical item holds exactly one copy per region. Clients live in
// region r0: each read picks a live front-end coordinator (r0 first)
// and routes through the ReadRouter under one of three strategies:
//
//   local_failover    prefer the r0 copy, fail over on timeout/refusal
//   primary_failover  placement (primary) order, failover enabled
//   primary_only      primary copy or nothing (max_attempts = 1)
//
// Scenario per strategy: steady read probes (every 250 ms) and
// replicated increments (every 1 s) for 60 s of virtual time; at
// t=20 s ALL of region r0 is lost — the client region itself — and
// from t=40 s it heals site-by-site (rolling recovery, 2 s stagger).
// After the load window everything heals and the run drains.
//
// What the bench demonstrates (and gates on):
//   * pre-loss latency: local reads cost intra-region RTT, primary
//     reads pay the WAN whenever the primary landed remote;
//   * failover strategies keep serving through the ENTIRE region
//     outage — the longest silent gap between successful reads is
//     bounded by the failover timeout + probe cadence, NOT by the
//     20 s outage — while primary_only goes dark for every item whose
//     primary copy lived in the lost region;
//   * correctness: TraceAuditor invariants A1-A13 over each run's
//     trace (A12 copy convergence from the end-of-run digest sweep,
//     A13 read provenance for every certain routed read), replica
//     consistency checks over the whole catalog, and zero residual
//     uncertainty.
//
// Results go to stdout and to BENCH_georep.json (override with
// POLYV_GEOREP_JSON). The simulator is seeded and deterministic: two
// runs emit byte-identical JSON, which CI verifies, and
// tools/bench_georep_gate.py re-checks the gates on the artifact.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/lockdep.h"
#include "src/obs/audit.h"
#include "src/obs/trace.h"
#include "src/replica/catalog.h"
#include "src/replica/consistency.h"
#include "src/replica/placement.h"
#include "src/replica/router.h"
#include "src/replica/topology.h"
#include "src/replica/wan.h"

namespace polyvalue {
namespace {

constexpr size_t kRegions = 3;
constexpr size_t kSitesPerRegion = 3;
constexpr size_t kSites = kRegions * kSitesPerRegion;
constexpr size_t kReplicationFactor = 3;
constexpr uint64_t kKeys = 64;
constexpr uint64_t kSeed = 20260808;
constexpr int64_t kInitialBalance = 100;

constexpr double kReadInterval = 0.25;
constexpr double kWriteInterval = 1.0;
constexpr double kLoadDuration = 60.0;
constexpr double kSettle = 15.0;
constexpr double kFailoverTimeout = 0.5;  // > worst-case WAN read RTT

constexpr double kRegionLossAt = 20.0;
constexpr double kRecoveryAt = 40.0;
constexpr double kRecoveryStagger = 2.0;
constexpr size_t kLostRegion = 0;  // the CLIENT region goes dark

// A refused probe retries like a real client would: a read can race a
// concurrent update whose copies are still locked or polyvalued (the
// router refuses uncertain copies — A13), and the refusal clears as
// soon as that update settles. Retries are bounded, so a genuinely
// dark item (primary_only during the outage) still counts as failed.
constexpr int kReadRetries = 2;
constexpr double kRetryBackoff = 0.4;

// Gates. The availability gap for failover strategies must be bounded
// by probe cadence + per-copy failover timeouts — a fixed bound that
// does NOT scale with the 20 s outage.
constexpr double kMaxFailoverGap =
    kReadInterval + kReplicationFactor * kFailoverTimeout + 0.35;

struct Strategy {
  const char* name;
  bool prefer_local;
  size_t max_attempts;  // 0 = every copy
};

const Strategy kStrategies[] = {
    {"local_failover", true, 0},
    {"primary_failover", false, 0},
    {"primary_only", false, 1},
};

struct ReadSample {
  double issued;
  double settled;
  bool served;
};

struct StrategyResult {
  const Strategy* strategy;

  uint64_t reads = 0;       // routed reads, retries included
  uint64_t served = 0;
  uint64_t failed = 0;
  uint64_t failovers = 0;
  uint64_t local_served = 0;
  uint64_t probes = 0;      // client probes (one per sample slot)
  uint64_t probes_served = 0;
  uint64_t write_commits = 0;
  uint64_t write_aborts = 0;

  double pre_loss_p50_ms = 0.0;
  double pre_loss_p99_ms = 0.0;
  double outage_availability = 0.0;  // served/issued in [loss, recovery)
  double overall_availability = 0.0;
  double max_success_gap_s = 0.0;  // longest silence between successes

  bool audit_clean = false;
  std::string audit_error;
  bool replicas_consistent = false;
  uint64_t final_uncertain = 0;
  int lockdep_reports = 0;

  bool pass = false;
};

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      pct / 100.0 * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

// First live site, region-0 front ends first — the client's redirect
// when its home region is dark.
size_t PickCoordinator(SimCluster* cluster) {
  for (size_t i = 0; i < kSites; ++i) {
    if (!cluster->site(i).crashed()) {
      return i;
    }
  }
  return 0;
}

StrategyResult RunStrategy(const Strategy& strategy) {
  StrategyResult result;
  result.strategy = &strategy;

  VectorTraceSink trace;
  SimCluster::Options options;
  options.site_count = kSites;
  // Engine timeouts sized for WAN round trips (80 ms one-way worst
  // case): a prepare must be allowed to cross the planet and return.
  options.engine.wait_timeout = 0.5;
  options.engine.inquiry_interval = 1.0;
  options.engine.validate_installs = true;
  options.seed = kSeed;
  options.trace = &trace;
  SimCluster cluster(options);

  const RegionTopology topo =
      RegionTopology::SymmetricGrid(kRegions, kSitesPerRegion);
  WanProfile wan;
  InstallWanProfile(topo, wan, &cluster.faults());

  PlacementPolicy policy;
  policy.replication_factor = kReplicationFactor;
  const ReplicaCatalog catalog = ReplicaCatalog::Uniform(
      ReplicaPlacement(topo, policy), "g/", kKeys);
  catalog.LoadAll(&cluster, Value::Int(kInitialBalance), &trace);

  ReadRouterOptions router_options;
  router_options.failover_timeout = kFailoverTimeout;
  router_options.prefer_local = strategy.prefer_local;
  router_options.local_region = 0;
  router_options.max_attempts = strategy.max_attempts;
  router_options.trace = &trace;
  ReadRouter router(&cluster, &topo, router_options);

  Simulator& sim = cluster.sim();
  const int lockdep_before = lockdep::ReportCount();

  // Chaos: the client region dies mid-load, then heals site-by-site.
  ScheduleRegionLoss(&cluster, topo, kLostRegion, kRegionLossAt);
  ScheduleRollingRecovery(&cluster, topo, kLostRegion, kRecoveryAt,
                          kRecoveryStagger);

  // Read probes: round-robin over the catalog so every placement (and
  // therefore every primary region) is exercised.
  auto samples = std::make_shared<std::vector<ReadSample>>();
  uint64_t next_item = 0;
  // One routed read, plus up to kReadRetries re-issues (each at a
  // fresh live coordinator) before the probe is recorded as failed.
  std::function<void(size_t, uint64_t, int)> issue =
      [&](size_t slot, uint64_t item, int retries_left) {
        const ReplicaSet& set = catalog.at(item % kKeys);
        const SiteId coordinator =
            cluster.site_id(PickCoordinator(&cluster));
        router.Read(
            set, coordinator,
            [&, slot, item, retries_left](const Result<Value>& r) {
              if (!r.ok() && retries_left > 0) {
                sim.After(kRetryBackoff, [&, slot, item, retries_left] {
                  issue(slot, item, retries_left - 1);
                });
                return;
              }
              (*samples)[slot].settled = sim.now();
              (*samples)[slot].served = r.ok();
            });
      };
  std::function<void(double)> probe = [&](double at) {
    sim.At(at, [&, at] {
      if (at + kReadInterval <= kLoadDuration) {
        probe(at + kReadInterval);
      }
      const uint64_t item = next_item++;
      const size_t slot = samples->size();
      samples->push_back(ReadSample{at, 0.0, false});
      issue(slot, item, kReadRetries);
    });
  };
  probe(0.1);

  // Replicated increments, one item per tick. Commit announcements
  // feed A13 exactly like the workload driver: certain outputs
  // announce their digest, uncertain committed outputs over-announce
  // every possible branch.
  uint64_t next_write = 0;
  std::function<void(double)> write = [&](double at) {
    sim.At(at, [&, at] {
      if (at + kWriteInterval <= kLoadDuration) {
        write(at + kWriteInterval);
      }
      const ReplicaSet& set = catalog.at((next_write * 7 + 3) % kKeys);
      ++next_write;
      const size_t coordinator = PickCoordinator(&cluster);
      const SiteId coord_site = cluster.site_id(coordinator);
      const std::string logical = set.logical_name();
      cluster.Submit(
          coordinator,
          set.MakeUpdate(
              [](const Value& v) { return Add(v, Value::Int(1)); }),
          [&, coord_site, logical](const TxnResult& r) {
            if (!r.committed()) {
              ++result.write_aborts;
              return;
            }
            ++result.write_commits;
            TraceEvent event;
            event.time = sim.now();
            event.type = TraceEventType::kReplicaWrite;
            event.site = coord_site;
            event.key = logical;
            if (r.output.is_certain()) {
              event.arg = DigestValue(r.output.certain_value());
              trace.Emit(event);
            } else {
              for (const Value& v : r.output.PossibleValues()) {
                event.arg = DigestValue(v);
                trace.Emit(event);
              }
            }
          });
    });
  };
  write(0.4);

  // Load, heal, drain.
  cluster.RunFor(kLoadDuration);
  for (size_t i = 0; i < kSites; ++i) {
    if (cluster.site(i).crashed()) {
      cluster.RecoverSite(i);
    }
  }
  cluster.faults().HealAll();
  cluster.RunFor(kSettle);

  // End-of-run digest sweep: the A12 evidence.
  for (size_t i = 0; i < kKeys; ++i) {
    EmitReplicaDigests(&cluster, catalog.at(i), &trace);
  }

  // Collect.
  result.reads = router.counters().reads;
  result.served = router.counters().served;
  result.failed = router.counters().failed;
  result.failovers = router.counters().failovers;
  result.local_served = router.counters().local_served;
  result.lockdep_reports = lockdep::ReportCount() - lockdep_before;

  std::vector<double> pre_loss_ms;
  uint64_t outage_issued = 0;
  uint64_t outage_served = 0;
  double last_success = 0.0;
  for (const ReadSample& s : *samples) {
    if (s.settled <= 0.0) {
      continue;  // a probe the run never settled (none expected)
    }
    ++result.probes;
    result.probes_served += s.served ? 1 : 0;
    if (s.served) {
      result.max_success_gap_s =
          std::max(result.max_success_gap_s, s.settled - last_success);
      last_success = s.settled;
    }
    if (s.issued < kRegionLossAt) {
      if (s.served) {
        pre_loss_ms.push_back((s.settled - s.issued) * 1e3);
      }
    }
    if (s.issued >= kRegionLossAt && s.issued < kRecoveryAt) {
      ++outage_issued;
      outage_served += s.served ? 1 : 0;
    }
  }
  // A final silent stretch counts too (a strategy that never recovers
  // must not hide its gap past the last sample).
  result.max_success_gap_s =
      std::max(result.max_success_gap_s, kLoadDuration - last_success);
  result.pre_loss_p50_ms = Percentile(pre_loss_ms, 50);
  result.pre_loss_p99_ms = Percentile(pre_loss_ms, 99);
  result.outage_availability =
      outage_issued == 0
          ? 0.0
          : static_cast<double>(outage_served) /
                static_cast<double>(outage_issued);
  result.overall_availability =
      result.probes == 0 ? 0.0
                         : static_cast<double>(result.probes_served) /
                               static_cast<double>(result.probes);

  const Status audit =
      TraceAuditor::Check(trace.Snapshot(), AuditOptions{});
  result.audit_clean = audit.ok();
  if (!audit.ok()) {
    result.audit_error = audit.message();
  }
  result.replicas_consistent = true;
  for (size_t i = 0; i < kKeys; ++i) {
    if (!CheckReplicaSet(&cluster, catalog.at(i)).consistent()) {
      result.replicas_consistent = false;
    }
  }
  result.final_uncertain = cluster.TotalUncertainItems();

  const bool correctness =
      result.audit_clean && result.replicas_consistent &&
      result.final_uncertain == 0 && result.lockdep_reports == 0;
  if (strategy.max_attempts == 0) {
    // Failover strategies: reads survive the ENTIRE region loss, and
    // the longest silence is failover-bounded, not outage-bounded.
    result.pass = correctness && result.outage_availability == 1.0 &&
                  result.max_success_gap_s <= kMaxFailoverGap;
  } else {
    // primary_only exists to show the contrast: items whose primary
    // lived in r0 go dark for the whole outage.
    result.pass = correctness && result.outage_availability < 0.9;
  }
  return result;
}

void AppendStrategy(std::string* json, const StrategyResult& r,
                    bool first) {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "%s\n    {\"strategy\": \"%s\", \"prefer_local\": %s, "
      "\"max_attempts\": %zu,\n"
      "     \"probes\": %llu, \"probes_served\": %llu, "
      "\"reads\": %llu, \"served\": %llu, \"failed\": %llu, "
      "\"failovers\": %llu, \"local_served\": %llu,\n"
      "     \"write_commits\": %llu, \"write_aborts\": %llu,\n"
      "     \"pre_loss_p50_ms\": %.3f, \"pre_loss_p99_ms\": %.3f,\n"
      "     \"outage_availability\": %.4f, "
      "\"overall_availability\": %.4f, "
      "\"max_success_gap_s\": %.3f,\n"
      "     \"audit_clean\": %s, \"replicas_consistent\": %s, "
      "\"final_uncertain\": %llu, \"lockdep_reports\": %d, "
      "\"pass\": %s}",
      first ? "" : ",", r.strategy->name,
      r.strategy->prefer_local ? "true" : "false",
      r.strategy->max_attempts,
      static_cast<unsigned long long>(r.probes),
      static_cast<unsigned long long>(r.probes_served),
      static_cast<unsigned long long>(r.reads),
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.failed),
      static_cast<unsigned long long>(r.failovers),
      static_cast<unsigned long long>(r.local_served),
      static_cast<unsigned long long>(r.write_commits),
      static_cast<unsigned long long>(r.write_aborts),
      r.pre_loss_p50_ms, r.pre_loss_p99_ms, r.outage_availability,
      r.overall_availability, r.max_success_gap_s,
      r.audit_clean ? "true" : "false",
      r.replicas_consistent ? "true" : "false",
      static_cast<unsigned long long>(r.final_uncertain),
      r.lockdep_reports, r.pass ? "true" : "false");
  *json += buf;
}

int Run() {
  std::printf(
      "Geo-replication bench: %zu regions x %zu sites, k=%zu, %llu "
      "logical items.\n"
      "Region r0 (the client region) lost at t=%.0fs, rolling recovery "
      "from t=%.0fs;\nreads every %.2fs, increments every %.1fs, "
      "audited A1-A13 per strategy.\n\n",
      kRegions, kSitesPerRegion, kReplicationFactor,
      static_cast<unsigned long long>(kKeys), kRegionLossAt, kRecoveryAt,
      kReadInterval, kWriteInterval);
  std::printf("%-17s %6s %6s %6s %9s %9s %8s %8s %7s %5s\n", "strategy",
              "reads", "served", "fail", "p50 ms", "p99 ms", "out-avl",
              "max-gap", "audit", "pass");
  std::printf("%.*s\n", 92,
              "------------------------------------------------------------"
              "------------------------------------");

  std::vector<StrategyResult> results;
  bool all_pass = true;
  for (const Strategy& strategy : kStrategies) {
    results.push_back(RunStrategy(strategy));
    const StrategyResult& r = results.back();
    if (!r.audit_clean) {
      std::fprintf(stderr, "AUDIT VIOLATION %s: %s\n", strategy.name,
                   r.audit_error.c_str());
    }
    std::printf("%-17s %6llu %6llu %6llu %9.2f %9.2f %7.1f%% %7.2fs %7s "
                "%5s\n",
                strategy.name, static_cast<unsigned long long>(r.reads),
                static_cast<unsigned long long>(r.served),
                static_cast<unsigned long long>(r.failed),
                r.pre_loss_p50_ms, r.pre_loss_p99_ms,
                100.0 * r.outage_availability, r.max_success_gap_s,
                r.audit_clean ? "ok" : "FAIL", r.pass ? "ok" : "FAIL");
    all_pass = all_pass && r.pass;
  }

  std::string json = "{\n  \"schema_version\": 1,\n"
                     "  \"bench\": \"bench_georep\",\n  \"config\": {";
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "\"regions\": %zu, \"sites_per_region\": %zu, "
      "\"replication_factor\": %zu, \"keys\": %llu, \"seed\": %llu, "
      "\"read_interval_s\": %.2f, \"write_interval_s\": %.1f, "
      "\"load_duration_s\": %.1f, \"settle_s\": %.1f, "
      "\"failover_timeout_s\": %.2f, \"read_retries\": %d, "
      "\"retry_backoff_s\": %.2f, \"region_loss_at_s\": %.1f, "
      "\"recovery_at_s\": %.1f, \"recovery_stagger_s\": %.1f, "
      "\"lost_region\": %zu, \"max_failover_gap_s\": %.2f},\n"
      "  \"strategies\": [",
      kRegions, kSitesPerRegion, kReplicationFactor,
      static_cast<unsigned long long>(kKeys),
      static_cast<unsigned long long>(kSeed), kReadInterval,
      kWriteInterval, kLoadDuration, kSettle, kFailoverTimeout,
      kReadRetries, kRetryBackoff, kRegionLossAt, kRecoveryAt,
      kRecoveryStagger, kLostRegion, kMaxFailoverGap);
  json += buf;
  for (size_t i = 0; i < results.size(); ++i) {
    AppendStrategy(&json, results[i], i == 0);
  }
  json += "\n  ],\n  \"pass\": ";
  json += all_pass ? "true" : "false";
  json += "\n}\n";

  const char* env = std::getenv("POLYV_GEOREP_JSON");
  const std::string path = env != nullptr ? env : "BENCH_georep.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::printf("\ngeo-replication JSON written to %s\n", path.c_str());

  if (!all_pass) {
    std::fprintf(stderr,
                 "FAIL: a strategy violated an invariant or missed its "
                 "availability/latency gate\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace polyvalue

int main() { return polyvalue::Run(); }
