// Cluster-scale chaos soak: the consolidated end-to-end regression gate.
//
// Runs a seed x workload x chaos grid through the full stack — workload
// generators (src/workload) -> serving front door (src/svc) -> commit
// engine (src/txn) — entirely on the deterministic simulator:
//
//   workload cells (key distribution x arrival curve x shape mix):
//     read_heavy      zipfian keys,  Poisson arrivals
//     write_heavy     uniform keys,  constant-rate arrivals
//     increment_heavy hot-set keys,  herd arrivals (retry-storm shape)
//     multi_site      zipfian keys,  diurnal arrivals
//   chaos scenarios:
//     steady          no injected failures
//     coordinator_flap  site 0 crashes and recovers twice mid-load
//     rolling_outage  each site takes a staggered outage in turn
//     lossy_net       3% of messages silently dropped during load
//   replicated chaos scenarios (read_heavy and multi_site mixes only,
//   run over a 2-region x 2-site topology with k=2 placement so every
//   logical item has one copy per region):
//     region_loss      region r1 dark from 30% of the load window until
//                      the end-of-load heal
//     split_brain      one-way cut r0 -> r1 mid-load (r1 hears r0, the
//                      replies vanish)
//     rolling_recovery region r0 lost, then healed site-by-site while
//                      load still flows
//
// Each cell multiplexes a MILLION virtual clients over the front door
// and soaks for minutes of virtual time; the whole grid covers hours of
// simulated operation per seed. After every run the full correctness
// battery fires: TraceAuditor invariants A1-A13 over the protocol trace
// (replicated cells exercise A12 copy convergence and A13 read
// integrity), lockdep must stay silent, the exactly-once arrival
// accounting must balance, the conservation audit must read zero drift,
// and no item may stay uncertain after healing. Any violation fails the
// bench.
//
// Results go to stdout as a table and to BENCH_cluster.json (override
// with POLYV_CLUSTER_JSON). The JSON is a pure function of the pinned
// seeds — two runs produce byte-identical files, which CI checks — and
// carries per-cell goodput/latency thresholds; a regression beyond
// them makes the bench (and CI) fail.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/lockdep.h"
#include "src/obs/audit.h"
#include "src/obs/trace.h"
#include "src/replica/wan.h"
#include "src/workload/driver.h"

namespace polyvalue {
namespace {

constexpr size_t kSites = 4;
constexpr uint64_t kKeys = 512;
constexpr uint64_t kVirtualClients = 1u << 20;  // 1,048,576
constexpr double kRate = 60.0;        // arrivals per virtual second
constexpr double kDuration = 450.0;   // offered-load seconds per cell
constexpr double kSettle = 30.0;      // drain window per cell
constexpr double kDeadline = 0.8;     // per-request deadline (seconds)
constexpr double kRateLimit = 80.0;   // front-door token bucket
constexpr size_t kMaxInflight = 64;
constexpr uint64_t kSeeds[] = {101, 202};
// Replicated chaos cells: 2 regions x 2 sites, every item replicated
// across both regions.
constexpr size_t kRegions = 2;
constexpr size_t kReplicationFactor = 2;

struct WorkloadCell {
  const char* name;
  KeyDistKind key_dist;
  ArrivalCurveKind arrival;
  MixParams (*mix)();
};

const WorkloadCell kWorkloads[] = {
    {"read_heavy", KeyDistKind::kZipfian, ArrivalCurveKind::kPoisson,
     &ReadHeavyMix},
    {"write_heavy", KeyDistKind::kUniform, ArrivalCurveKind::kConstant,
     &WriteHeavyMix},
    {"increment_heavy", KeyDistKind::kHotSet, ArrivalCurveKind::kHerd,
     &IncrementHeavyMix},
    {"multi_site", KeyDistKind::kZipfian, ArrivalCurveKind::kDiurnal,
     &MultiSiteMix},
};

enum class Chaos {
  kSteady,
  kCoordinatorFlap,
  kRollingOutage,
  kLossyNet,
  kRegionLoss,
  kSplitBrain,
  kRollingRecovery,
};

struct ChaosCell {
  const char* name;
  Chaos kind;
  // Replicated cells run the workload over the 2-region k=2 replica
  // catalog (and only on the read_heavy / multi_site mixes — the two
  // that bracket the read- and write-fan-out extremes).
  bool replicated;
};

const ChaosCell kChaos[] = {
    {"steady", Chaos::kSteady, false},
    {"coordinator_flap", Chaos::kCoordinatorFlap, false},
    {"rolling_outage", Chaos::kRollingOutage, false},
    {"lossy_net", Chaos::kLossyNet, false},
    {"region_loss", Chaos::kRegionLoss, true},
    {"split_brain", Chaos::kSplitBrain, true},
    {"rolling_recovery", Chaos::kRollingRecovery, true},
};

bool RunsReplicatedChaos(const WorkloadCell& workload) {
  const std::string name = workload.name;
  return name == "read_heavy" || name == "multi_site";
}

// Per-cell regression thresholds, recorded from the pinned-seed run at
// the time the bench landed (goodput floors ~20% below measured, p99
// ceilings ~50% above). The simulator is deterministic, so drifting
// outside these bounds means the CODE changed behaviour, not the
// machine.
struct Threshold {
  double min_goodput;  // commits per virtual second (mean over seeds)
  double max_p99_ms;   // worst seed
};

Threshold ThresholdFor(const std::string& workload,
                       const std::string& chaos) {
  // Steady-state commits run close to the offered rate; chaos cells
  // give back what their outages cost. Values from the seed {101,202}
  // baseline (see docs/PERFORMANCE.md, "Cluster soak methodology").
  static const struct {
    const char* workload;
    const char* chaos;
    Threshold t;
  } kTable[] = {
      {"read_heavy", "steady", {46.0, 110.0}},
      {"read_heavy", "coordinator_flap", {43.0, 400.0}},
      {"read_heavy", "rolling_outage", {40.0, 790.0}},
      {"read_heavy", "lossy_net", {34.0, 510.0}},
      {"write_heavy", "steady", {48.0, 70.0}},
      {"write_heavy", "coordinator_flap", {46.0, 400.0}},
      {"write_heavy", "rolling_outage", {43.0, 790.0}},
      {"write_heavy", "lossy_net", {41.0, 980.0}},
      {"increment_heavy", "steady", {24.5, 90.0}},
      {"increment_heavy", "coordinator_flap", {24.0, 400.0}},
      {"increment_heavy", "rolling_outage", {23.0, 790.0}},
      {"increment_heavy", "lossy_net", {23.0, 630.0}},
      {"multi_site", "steady", {37.0, 110.0}},
      {"multi_site", "coordinator_flap", {35.0, 400.0}},
      {"multi_site", "rolling_outage", {31.0, 400.0}},
      {"multi_site", "lossy_net", {24.0, 510.0}},
      // Replicated geo-chaos cells (2 regions, k=2): goodput gives back
      // what the region outage costs — every write fans to both
      // regions, so a dark region stalls the write shapes for the
      // outage window.
      {"read_heavy", "region_loss", {23.0, 800.0}},
      {"read_heavy", "split_brain", {35.0, 800.0}},
      {"read_heavy", "rolling_recovery", {33.0, 800.0}},
      {"multi_site", "region_loss", {12.0, 800.0}},
      {"multi_site", "split_brain", {23.0, 800.0}},
      {"multi_site", "rolling_recovery", {22.0, 800.0}},
  };
  for (const auto& row : kTable) {
    if (workload == row.workload && chaos == row.chaos) {
      return row.t;
    }
  }
  return {0.0, 1e9};
}

void InstallChaos(Chaos kind, ClusterWorkload* wl) {
  SimCluster& cluster = wl->cluster();
  Simulator& sim = cluster.sim();
  switch (kind) {
    case Chaos::kSteady:
      break;
    case Chaos::kCoordinatorFlap:
      // Two crash/recover cycles on site 0 while load is flowing.
      for (double at : {0.25 * kDuration, 0.60 * kDuration}) {
        sim.At(at, [&cluster] { cluster.CrashSite(0); });
        sim.At(at + 20.0, [&cluster] { cluster.RecoverSite(0); });
      }
      break;
    case Chaos::kRollingOutage:
      // Staggered single-site outages: each site down for 25 seconds,
      // windows disjoint, covering most of the load phase.
      for (size_t s = 0; s < kSites; ++s) {
        const double down = kDuration * (0.15 + 0.18 * s);
        sim.At(down, [&cluster, s] { cluster.CrashSite(s); });
        sim.At(down + 25.0, [&cluster, s] { cluster.RecoverSite(s); });
      }
      break;
    case Chaos::kLossyNet:
      // Silent message loss for the whole load phase (the driver heals
      // the fault plane before the settle window).
      cluster.faults().SetDropProbability(0.03);
      break;
    case Chaos::kRegionLoss:
      // Region r1 — half of every replica set — dark from 30% of the
      // load window until the driver's end-of-load heal.
      ScheduleRegionLoss(&cluster, *wl->topology(), 1, 0.30 * kDuration);
      break;
    case Chaos::kSplitBrain:
      // One-way cut r0 -> r1 mid-load: region 1 keeps hearing region 0
      // but its replies vanish, the asymmetric half-partition a
      // symmetric link cut cannot model.
      ScheduleOneWayPartition(&cluster, *wl->topology(), 0, 1,
                              0.25 * kDuration, 0.60 * kDuration);
      break;
    case Chaos::kRollingRecovery:
      // Region r0 lost, then healed one site every 20 s while load is
      // still flowing.
      ScheduleRegionLoss(&cluster, *wl->topology(), 0, 0.20 * kDuration);
      ScheduleRollingRecovery(&cluster, *wl->topology(), 0,
                              0.55 * kDuration, 20.0);
      break;
  }
}

struct RunOutcome {
  ClusterWorkloadReport report;
  bool audit_clean = false;
  std::string audit_error;
  int lockdep_reports = 0;
};

RunOutcome RunCell(const WorkloadCell& workload, const ChaosCell& chaos,
                   uint64_t seed) {
  VectorTraceSink trace;
  ClusterWorkloadParams params;
  params.sites = kSites;
  params.keys = kKeys;
  params.virtual_clients = kVirtualClients;
  params.key_dist.kind = workload.key_dist;
  params.arrival.kind = workload.arrival;
  params.arrival.rate = kRate;
  params.mix = workload.mix();
  params.duration = kDuration;
  params.settle_time = kSettle;
  params.deadline = kDeadline;
  params.svc.admission.rate_limit = kRateLimit;
  params.svc.admission.max_inflight = kMaxInflight;
  params.seed = seed;
  params.trace = &trace;
  if (chaos.replicated) {
    params.replication_factor = kReplicationFactor;
    params.regions = kRegions;
  }

  const int lockdep_before = lockdep::ReportCount();
  ClusterWorkload wl(params);
  InstallChaos(chaos.kind, &wl);

  RunOutcome out;
  out.report = wl.Run();
  out.lockdep_reports = lockdep::ReportCount() - lockdep_before;

  AuditOptions audit;
  audit.expect_quiescent = true;
  const Status status = TraceAuditor::Check(trace.Snapshot(), audit);
  out.audit_clean = status.ok();
  if (!status.ok()) {
    out.audit_error = status.message();
  }
  return out;
}

struct CellSummary {
  const WorkloadCell* workload;
  const ChaosCell* chaos;
  std::vector<RunOutcome> runs;  // one per pinned seed

  double goodput = 0.0;        // mean over seeds
  double shed_fraction = 0.0;  // mean over seeds, of offered
  double commit_fraction = 0.0;
  double p50_ms = 0.0;  // worst seed
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double peak_uncertain = 0.0;
  double avg_uncertain = 0.0;
  bool invariants_ok = true;
  Threshold threshold;
  bool pass = true;
};

CellSummary Summarize(const WorkloadCell& workload, const ChaosCell& chaos,
                      std::vector<RunOutcome> runs) {
  CellSummary cell;
  cell.workload = &workload;
  cell.chaos = &chaos;
  cell.runs = std::move(runs);
  for (const RunOutcome& run : cell.runs) {
    const ClusterWorkloadReport& r = run.report;
    cell.goodput += r.goodput;
    const double offered =
        r.offered == 0 ? 1.0 : static_cast<double>(r.offered);
    cell.shed_fraction += static_cast<double>(r.shed) / offered;
    cell.commit_fraction += static_cast<double>(r.committed) / offered;
    cell.p50_ms = std::max(cell.p50_ms, r.p50 * 1e3);
    cell.p99_ms = std::max(cell.p99_ms, r.p99 * 1e3);
    cell.p999_ms = std::max(cell.p999_ms, r.p999 * 1e3);
    cell.peak_uncertain = std::max(cell.peak_uncertain,
                                   r.peak_uncertain_items);
    cell.avg_uncertain += r.avg_uncertain_items;
    const bool run_ok = run.audit_clean && run.lockdep_reports == 0 &&
                        r.ExactlyOnce() && r.conservation_drift == 0 &&
                        r.final_uncertain_items == 0;
    if (!run_ok) {
      cell.invariants_ok = false;
    }
  }
  const double n = static_cast<double>(cell.runs.size());
  cell.goodput /= n;
  cell.shed_fraction /= n;
  cell.commit_fraction /= n;
  cell.avg_uncertain /= n;
  cell.threshold = ThresholdFor(workload.name, chaos.name);
  cell.pass = cell.invariants_ok &&
              cell.goodput >= cell.threshold.min_goodput &&
              cell.p99_ms <= cell.threshold.max_p99_ms;
  return cell;
}

void AppendRun(std::string* json, const RunOutcome& run, uint64_t seed) {
  const ClusterWorkloadReport& r = run.report;
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"seed\": %llu, \"arrivals\": %llu, \"rejected_down\": %llu, "
      "\"offered\": %llu, \"shed\": %llu, \"committed\": %llu, "
      "\"aborted\": %llu, \"deadline_exceeded\": %llu, "
      "\"budget_exhausted\": %llu, \"retries\": %llu, "
      "\"goodput\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
      "\"p999_ms\": %.3f, \"peak_uncertain_items\": %.1f, "
      "\"avg_uncertain_items\": %.3f, \"final_uncertain_items\": %llu, "
      "\"polyvalue_installs\": %llu, \"conservation_drift\": %lld, "
      "\"peak_tracked_clients\": %llu, \"peak_inflight\": %llu, "
      "\"exactly_once\": %s, \"audit_clean\": %s, "
      "\"lockdep_reports\": %d, \"schedule_hash\": \"%016llx\"}",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(r.arrivals),
      static_cast<unsigned long long>(r.rejected_down),
      static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.committed),
      static_cast<unsigned long long>(r.aborted),
      static_cast<unsigned long long>(r.deadline_exceeded),
      static_cast<unsigned long long>(r.budget_exhausted),
      static_cast<unsigned long long>(r.retries), r.goodput, r.p50 * 1e3,
      r.p99 * 1e3, r.p999 * 1e3, r.peak_uncertain_items,
      r.avg_uncertain_items,
      static_cast<unsigned long long>(r.final_uncertain_items),
      static_cast<unsigned long long>(r.polyvalue_installs),
      static_cast<long long>(r.conservation_drift),
      static_cast<unsigned long long>(r.peak_tracked_clients),
      static_cast<unsigned long long>(r.peak_inflight),
      r.ExactlyOnce() ? "true" : "false",
      run.audit_clean ? "true" : "false", run.lockdep_reports,
      static_cast<unsigned long long>(r.schedule_hash));
  *json += buf;
}

void AppendCell(std::string* json, const CellSummary& cell, bool first) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "%s\n    {\"workload\": \"%s\", \"chaos\": \"%s\", "
      "\"key_dist\": \"%s\", \"arrival\": \"%s\", \"replicated\": %s,\n"
      "     \"goodput\": %.3f, \"shed_fraction\": %.4f, "
      "\"commit_fraction\": %.4f,\n"
      "     \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f,\n"
      "     \"peak_uncertain_items\": %.1f, \"avg_uncertain_items\": "
      "%.3f,\n"
      "     \"invariants_ok\": %s, \"min_goodput\": %.1f, "
      "\"max_p99_ms\": %.1f, \"pass\": %s,\n"
      "     \"runs\": [",
      first ? "" : ",", cell.workload->name, cell.chaos->name,
      KeyDistKindName(cell.workload->key_dist),
      ArrivalCurveKindName(cell.workload->arrival),
      cell.chaos->replicated ? "true" : "false", cell.goodput,
      cell.shed_fraction, cell.commit_fraction, cell.p50_ms, cell.p99_ms,
      cell.p999_ms, cell.peak_uncertain, cell.avg_uncertain,
      cell.invariants_ok ? "true" : "false", cell.threshold.min_goodput,
      cell.threshold.max_p99_ms, cell.pass ? "true" : "false");
  *json += buf;
  for (size_t i = 0; i < cell.runs.size(); ++i) {
    *json += i == 0 ? "\n       " : ",\n       ";
    AppendRun(json, cell.runs[i], kSeeds[i]);
  }
  *json += "]}";
}

int Run() {
  std::vector<CellSummary> cells;
  std::printf(
      "Cluster chaos soak: %zu sites, %llu keys, %llu virtual clients,\n"
      "%.0f arrivals/s for %.0f virtual s per cell (+%.0f s settle), "
      "seeds {%llu, %llu}.\n"
      "Grid: 4 workload mixes x 4 chaos scenarios, plus 2 geo mixes x 3 "
      "replicated\nchaos scenarios (%zu regions, k=%zu); every run audited "
      "(A1-A13, lockdep,\nexactly-once, conservation).\n\n",
      kSites, static_cast<unsigned long long>(kKeys),
      static_cast<unsigned long long>(kVirtualClients), kRate, kDuration,
      kSettle, static_cast<unsigned long long>(kSeeds[0]),
      static_cast<unsigned long long>(kSeeds[1]), kRegions,
      kReplicationFactor);
  std::printf("%-16s %-17s %8s %7s %7s %9s %9s %6s %5s\n", "workload",
              "chaos", "goodput", "shed%", "commit%", "p99 ms",
              "p99.9 ms", "inv", "pass");
  std::printf("%.*s\n", 96,
              "------------------------------------------------------------"
              "------------------------------------");

  bool all_pass = true;
  for (const WorkloadCell& workload : kWorkloads) {
    for (const ChaosCell& chaos : kChaos) {
      if (chaos.replicated && !RunsReplicatedChaos(workload)) {
        continue;
      }
      std::vector<RunOutcome> runs;
      for (uint64_t seed : kSeeds) {
        runs.push_back(RunCell(workload, chaos, seed));
        const RunOutcome& run = runs.back();
        if (!run.audit_clean) {
          std::fprintf(stderr, "AUDIT VIOLATION %s/%s seed %llu: %s\n",
                       workload.name, chaos.name,
                       static_cast<unsigned long long>(seed),
                       run.audit_error.c_str());
        }
      }
      CellSummary cell = Summarize(workload, chaos, std::move(runs));
      std::printf("%-16s %-17s %8.1f %6.1f%% %6.1f%% %9.2f %9.2f %6s %5s\n",
                  workload.name, chaos.name, cell.goodput,
                  100.0 * cell.shed_fraction, 100.0 * cell.commit_fraction,
                  cell.p99_ms, cell.p999_ms,
                  cell.invariants_ok ? "ok" : "FAIL",
                  cell.pass ? "ok" : "FAIL");
      all_pass = all_pass && cell.pass;
      cells.push_back(std::move(cell));
    }
  }

  // One consolidated JSON document for CI to diff, gate, and archive.
  std::string json = "{\n  \"schema_version\": 1,\n"
                     "  \"bench\": \"bench_cluster\",\n  \"config\": {";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"sites\": %zu, \"keys\": %llu, \"virtual_clients\": %llu, "
      "\"rate\": %.1f, \"duration_s\": %.1f, \"settle_s\": %.1f, "
      "\"deadline_s\": %.3f, \"rate_limit\": %.1f, \"max_inflight\": %zu, "
      "\"regions\": %zu, \"replication_factor\": %zu, "
      "\"seeds\": [%llu, %llu]},\n  \"scenarios\": [",
      kSites, static_cast<unsigned long long>(kKeys),
      static_cast<unsigned long long>(kVirtualClients), kRate, kDuration,
      kSettle, kDeadline, kRateLimit, kMaxInflight, kRegions,
      kReplicationFactor, static_cast<unsigned long long>(kSeeds[0]),
      static_cast<unsigned long long>(kSeeds[1]));
  json += buf;
  for (size_t i = 0; i < cells.size(); ++i) {
    AppendCell(&json, cells[i], i == 0);
  }
  json += "\n  ],\n  \"pass\": ";
  json += all_pass ? "true" : "false";
  json += "\n}\n";

  const char* env = std::getenv("POLYV_CLUSTER_JSON");
  const std::string path = env != nullptr ? env : "BENCH_cluster.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::printf("\ncluster soak JSON written to %s\n", path.c_str());

  if (!all_pass) {
    std::fprintf(stderr,
                 "FAIL: at least one soak cell violated an invariant or "
                 "regressed past its threshold\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace polyvalue

int main() { return polyvalue::Run(); }
