// Experiment X8 (extension): Table 2 re-run against the REAL engine.
//
// The paper validates its model with an abstract simulation; we validate
// it with the full protocol stack in the loop — 2PC, wait timeouts,
// per-transaction outcome-message loss (Exp(1/R) outages via a transport
// filter), polyvalue installs, polytransactions, inquiry-based recovery.
// Rows mirror Table 2's parameter spirit scaled to an engine-tractable
// database (I = 400 spread over 8 sites).
#include <cstdio>

#include "src/baseline/engine_validation.h"

namespace polyvalue {
namespace {

struct Row {
  double u, f, r, y, d;
};

constexpr Row kRows[] = {
    {10, 0.03, 0.05, 0, 1},  // baseline
    {20, 0.03, 0.05, 0, 1},  // U x2
    {10, 0.06, 0.05, 0, 1},  // F x2
    {10, 0.03, 0.10, 0, 1},  // R x2 (faster heal)
    {10, 0.03, 0.05, 0, 3},  // D = 3 (more propagation)
    {10, 0.03, 0.05, 1, 1},  // Y = 1 (overwrites clear uncertainty)
};

}  // namespace
}  // namespace polyvalue

int main() {
  using namespace polyvalue;
  std::printf("Model vs REAL ENGINE: uncertain-item counts under "
              "per-transaction failures\n");
  std::printf("(8 sites, I=2000, 50 s warmup + 600 s measured, full "
              "protocol stack in the loop)\n\n");
  std::printf("%-4s %-6s %-6s %-3s %-3s | %-9s %-9s %-9s | %-8s %-8s\n",
              "U", "F", "R", "Y", "D", "model P", "engine P", "ratio",
              "strands", "polytxns");
  std::printf("%.*s\n", 78,
              "-----------------------------------------------------------"
              "--------------------");
  for (const Row& row : kRows) {
    EngineValidationParams p;
    p.updates_per_second = row.u;
    p.failure_probability = row.f;
    p.recovery_rate = row.r;
    p.overwrite_probability = row.y;
    p.dependency_degree = row.d;
    p.seed = 2025;
    p.warmup_seconds = 50;
    p.measure_seconds = 600;
    const EngineValidationReport report = RunEngineValidation(p);
    const double ratio = report.model_prediction > 0
                             ? report.avg_uncertain_items /
                                   report.model_prediction
                             : 0;
    std::printf("%-4.0f %-6.2f %-6.2f %-3.0f %-3.0f | %-9.2f %-9.2f "
                "%-9.2f | %-8llu %-8llu\n",
                row.u, row.f, row.r, row.y, row.d,
                report.model_prediction, report.avg_uncertain_items, ratio,
                static_cast<unsigned long long>(report.stranded),
                static_cast<unsigned long long>(report.polytxns));
  }
  std::printf(
      "\nExpected shape: ratio ≈ 0.8–1.0 across the sweep — the 1979 "
      "model predicts\nthe behaviour of this real implementation, not "
      "just of the abstract\nsimulation, and the real engine (like the "
      "paper's own simulation) comes in\nslightly BELOW the first-order "
      "prediction.\n");
  return 0;
}
