// Experiment X3 (extension): the model-validity frontier.
//
// §4.1 warns that the first-order solution "is only valid when the
// number of polyvalues is small compared to the number of database
// items" and diverges as IR + UY − UD → 0. This bench sweeps the
// dependency degree D toward the critical value D* = (IR + UY)/U and
// compares the closed form against the exact simulation, showing
//   (a) close agreement deep inside the stable region,
//   (b) growing over-prediction near the frontier,
//   (c) a finite simulated population even where the model says ∞
//       (saturation effects the first-order model ignores).
#include <cmath>
#include <cstdio>

#include "src/model/analytic.h"
#include "src/sim/poly_sim.h"

namespace polyvalue {
namespace {

void RunSweep() {
  const double u = 10;
  const double f = 0.01;
  const double items = 10000;
  const double r = 0.01;
  const double critical_d = items * r / u;  // Y = 0 => D* = IR/U = 10

  std::printf("Model-validity frontier: sweep D toward the critical value "
              "D* = IR/U = %.1f\n", critical_d);
  std::printf("(U=%.0f F=%.2f I=%.0f R=%.2f Y=0; sim: 3000 s warmup, "
              "12000 s measured)\n\n", u, f, items, r);
  std::printf("%-6s %-12s %-12s %-12s %-10s\n", "D", "model P",
              "sim P", "sim/model", "sim P/I");
  std::printf("%.*s\n", 56,
              "-----------------------------------------------------------");
  for (double d : {1.0, 3.0, 5.0, 7.0, 9.0, 9.5, 10.0, 11.0}) {
    ModelParams m;
    m.updates_per_second = u;
    m.failure_probability = f;
    m.items = items;
    m.recovery_rate = r;
    m.overwrite_probability = 0;
    m.dependency_degree = d;
    const Prediction pred = Predict(m);

    PolySimParams p;
    p.updates_per_second = u;
    p.failure_probability = f;
    p.items = static_cast<uint64_t>(items);
    p.recovery_rate = r;
    p.overwrite_probability = 0;
    p.dependency_degree = d;
    p.seed = 31 + static_cast<uint64_t>(d * 10);
    p.warmup_seconds = 3000;
    p.measure_seconds = 12000;
    const PolySimStats stats = RunPolySim(p);

    char model[24];
    char ratio[24];
    if (pred.stable) {
      std::snprintf(model, sizeof(model), "%10.2f", pred.steady_state);
      std::snprintf(ratio, sizeof(ratio), "%10.2f",
                    stats.average_polyvalues / pred.steady_state);
    } else {
      std::snprintf(model, sizeof(model), "       inf");
      std::snprintf(ratio, sizeof(ratio), "         0");
    }
    std::printf("%-6.1f %-12s %-12.2f %-12s %-10.4f\n", d, model,
                stats.average_polyvalues, ratio,
                stats.average_polyvalues / items);
  }
  std::printf("\nExpected shape: sim/model ≈ 1 for small D, drops below 1 "
              "approaching D*,\nand the simulated population stays finite "
              "past D* (the model's divergence is\nan artifact of dropping "
              "the (1 - P/I) saturation term — §4.1's own caveat).\n");
}

void RunBurstRecovery() {
  // The §4.1 stability claim: a burst decays back at rate k.
  std::printf("\nBurst decay: model time-constant vs simulation\n");
  ModelParams m;
  m.updates_per_second = 10;
  m.failure_probability = 0.01;
  m.items = 10000;
  m.recovery_rate = 0.01;
  m.overwrite_probability = 0;
  m.dependency_degree = 1;
  const Prediction pred = Predict(m);
  std::printf("model: P_inf = %.2f, decay rate k = %.4f /s "
              "(time constant %.0f s)\n",
              pred.steady_state, pred.decay_rate, 1.0 / pred.decay_rate);
  std::printf("transient from P(0)=200: t=1tc -> %.1f, t=3tc -> %.1f, "
              "t=5tc -> %.1f\n",
              TransientP(m, 200, 1.0 / pred.decay_rate),
              TransientP(m, 200, 3.0 / pred.decay_rate),
              TransientP(m, 200, 5.0 / pred.decay_rate));
}

}  // namespace
}  // namespace polyvalue

int main() {
  polyvalue::RunSweep();
  polyvalue::RunBurstRecovery();
  return 0;
}
