// Engine throughput: how many transactions per second of real CPU time
// the stack sustains, on the deterministic runtime (protocol cost alone,
// no network) and the threaded in-memory runtime (with real
// synchronisation). Not a paper figure — a regression baseline for the
// implementation itself.
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

TxnSpec Bump(const ItemKey& key, SiteId site) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + 1);
    return e;
  });
  return spec;
}

// `trace` exercises the instrumented path (null = the zero-cost default);
// `registry` receives the cluster's end-of-run metrics when non-null.
double SimThroughput(size_t sites, int txns, TraceSink* trace = nullptr,
                     MetricsRegistry* registry = nullptr) {
  SimCluster::Options options;
  options.site_count = sites;
  options.min_delay = 0.0005;
  options.max_delay = 0.0005;
  options.trace = trace;
  SimCluster cluster(options);
  for (size_t s = 0; s < sites; ++s) {
    cluster.Load(s, "k" + std::to_string(s), Value::Int(0));
  }
  const auto start = std::chrono::steady_clock::now();
  int committed = 0;
  for (int i = 0; i < txns; ++i) {
    const size_t target = i % sites;
    const auto result = cluster.SubmitAndRun(
        (target + 1) % sites,
        Bump("k" + std::to_string(target), cluster.site_id(target)));
    if (result.has_value() && result->committed()) {
      ++committed;
    }
    cluster.RunFor(0.01);
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  if (registry != nullptr) {
    cluster.ExportMetrics(registry);
  }
  return committed / elapsed;
}

// One cell of the durability/batching matrix on the threaded runtime.
struct ThreadedConfig {
  // Empty: no WAL at all (the historical bench rows). Otherwise each site
  // logs to <wal_dir>/site<i>.wal with the policy below.
  std::string wal_dir;
  Wal::SyncPolicy sync_policy = Wal::SyncPolicy::kEveryAppend;
  bool batching = false;
  size_t clients = 4;
};

double ThreadedThroughput(size_t sites, int txns,
                          const ThreadedConfig& config = {}) {
  ThreadCluster::Options options;
  options.site_count = sites;
  options.engine.prepare_timeout = 2.0;
  options.engine.ready_timeout = 2.0;
  if (!config.wal_dir.empty()) {
    options.wal_dir = config.wal_dir;
    options.wal.sync_policy = config.sync_policy;
  }
  options.enable_batching = config.batching;
  // A tight flush window: coalescing is worth at most this much latency
  // per hop, and on the in-memory transport latency is the whole game.
  options.batching.window_seconds = 0.00005;
  ThreadCluster cluster(options);
  const size_t client_count = config.clients;
  for (size_t c = 0; c < client_count; ++c) {
    const size_t target = c % sites;
    cluster.Load(target,
                 "k" + std::to_string(target) + "/" + std::to_string(c),
                 Value::Int(0));
  }
  const auto start = std::chrono::steady_clock::now();
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < client_count; ++c) {
    clients.emplace_back([&, c] {
      for (int i = static_cast<int>(c); i < txns;
           i += static_cast<int>(client_count)) {
        // Each client owns a disjoint item: no conflicts, pure pipeline.
        const size_t target = c % sites;
        const auto result = cluster.SubmitAndWait(
            (target + 1) % sites,
            Bump("k" + std::to_string(target) + "/" + std::to_string(c),
                 cluster.site_id(target)));
        if (result.has_value() && result->committed()) {
          ++committed;
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return committed / elapsed;
}

// Fresh WAL directory per matrix cell so no run replays another's log.
std::string FreshWalDir(const char* name) {
  const std::string dir = std::string("/tmp/polyv_bench_") + name;
  mkdir(dir.c_str(), 0755);
  for (int i = 0; i < 8; ++i) {
    std::remove((dir + "/site" + std::to_string(i) + ".wal").c_str());
  }
  return dir;
}

}  // namespace
}  // namespace polyvalue

int main() {
  using namespace polyvalue;
  std::printf("Engine throughput (committed txns per CPU-second)\n\n");
  std::printf("%-34s %12s\n", "configuration", "txns/s");
  std::printf("%.*s\n", 48, "------------------------------------------------");
  MetricsRegistry registry;
  const double sim2 = SimThroughput(2, 2000, nullptr, &registry);
  const double sim4 = SimThroughput(4, 2000);
  std::printf("%-34s %12.0f\n", "sim runtime, 2 sites, sequential", sim2);
  std::printf("%-34s %12.0f\n", "sim runtime, 4 sites, sequential", sim4);
  // Same workload with a sink attached: the gap between this row and the
  // untraced one above is the full cost of tracing; the untraced row
  // itself only pays a null-pointer test per would-be event.
  CountingTraceSink counting;
  const double sim2_traced = SimThroughput(2, 2000, &counting);
  std::printf("%-34s %12.0f\n", "sim runtime, 2 sites, traced sink",
              sim2_traced);
  const double thr2 = ThreadedThroughput(2, 400);
  const double thr4 = ThreadedThroughput(4, 400);
  std::printf("%-34s %12.0f\n", "threaded mem runtime, 2 sites x4 cli", thr2);
  std::printf("%-34s %12.0f\n", "threaded mem runtime, 4 sites x4 cli", thr4);
  std::printf("\n(threaded numbers include real thread handoffs per "
              "message; the mem transport\ndelivers through per-site "
              "dispatcher threads.)\n");

  // Durability/batching matrix: same threaded workload, durable WAL on
  // every site, group commit and message batching toggled independently.
  // The fsync-per-record row is the baseline the optimisations must beat.
  std::printf("\nDurable threaded runtime, 2 sites x16 cli "
              "(group commit x batching)\n\n");
  std::printf("%-34s %12s\n", "configuration", "txns/s");
  std::printf("%.*s\n", 48, "------------------------------------------------");
  const int kDurableTxns = 480;
  ThreadedConfig cell;
  cell.clients = 16;
  cell.sync_policy = Wal::SyncPolicy::kEveryAppend;
  cell.batching = false;
  cell.wal_dir = FreshWalDir("sync_plain");
  const double dur_sync_plain = ThreadedThroughput(2, kDurableTxns, cell);
  std::printf("%-34s %12.0f\n", "fsync/record, unbatched", dur_sync_plain);
  cell.batching = true;
  cell.wal_dir = FreshWalDir("sync_batch");
  const double dur_sync_batch = ThreadedThroughput(2, kDurableTxns, cell);
  std::printf("%-34s %12.0f\n", "fsync/record, batched", dur_sync_batch);
  cell.sync_policy = Wal::SyncPolicy::kGroupCommit;
  cell.batching = false;
  cell.wal_dir = FreshWalDir("group_plain");
  const double dur_group_plain = ThreadedThroughput(2, kDurableTxns, cell);
  std::printf("%-34s %12.0f\n", "group commit, unbatched", dur_group_plain);
  cell.batching = true;
  cell.wal_dir = FreshWalDir("group_batch");
  const double dur_group_batch = ThreadedThroughput(2, kDurableTxns, cell);
  std::printf("%-34s %12.0f\n", "group commit, batched", dur_group_batch);
  std::printf("\ngroup commit + batching vs fsync/record unbatched: "
              "%.2fx\n", dur_group_batch / dur_sync_plain);
  std::printf("\ntracing: %llu events through the sink; traced/untraced "
              "throughput ratio %.2f\n",
              static_cast<unsigned long long>(counting.count()),
              sim2_traced / sim2);

  registry.Gauge("bench.sim_2site_txns_per_sec", sim2);
  registry.Gauge("bench.sim_4site_txns_per_sec", sim4);
  registry.Gauge("bench.sim_2site_traced_txns_per_sec", sim2_traced);
  registry.Gauge("bench.threaded_2site_txns_per_sec", thr2);
  registry.Gauge("bench.threaded_4site_txns_per_sec", thr4);
  registry.Gauge("bench.durable_sync_plain_txns_per_sec", dur_sync_plain);
  registry.Gauge("bench.durable_sync_batched_txns_per_sec", dur_sync_batch);
  registry.Gauge("bench.durable_group_plain_txns_per_sec", dur_group_plain);
  registry.Gauge("bench.durable_group_batched_txns_per_sec",
                 dur_group_batch);
  registry.SetCounter("bench.trace_events_emitted", counting.count());
  if (const char* path = std::getenv("POLYV_METRICS_JSON")) {
    const Status status = registry.WriteJsonFile(path);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write metrics JSON to %s: %s\n", path,
                   status.message().c_str());
      return 1;
    }
    std::printf("metrics JSON written to %s\n", path);
  }
  return 0;
}
