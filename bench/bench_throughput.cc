// Engine throughput: how many transactions per second of real CPU time
// the stack sustains, on the deterministic runtime (protocol cost alone,
// no network) and the threaded in-memory runtime (with real
// synchronisation). Not a paper figure — a regression baseline for the
// implementation itself.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

TxnSpec Bump(const ItemKey& key, SiteId site) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + 1);
    return e;
  });
  return spec;
}

// `trace` exercises the instrumented path (null = the zero-cost default);
// `registry` receives the cluster's end-of-run metrics when non-null.
double SimThroughput(size_t sites, int txns, TraceSink* trace = nullptr,
                     MetricsRegistry* registry = nullptr) {
  SimCluster::Options options;
  options.site_count = sites;
  options.min_delay = 0.0005;
  options.max_delay = 0.0005;
  options.trace = trace;
  SimCluster cluster(options);
  for (size_t s = 0; s < sites; ++s) {
    cluster.Load(s, "k" + std::to_string(s), Value::Int(0));
  }
  const auto start = std::chrono::steady_clock::now();
  int committed = 0;
  for (int i = 0; i < txns; ++i) {
    const size_t target = i % sites;
    const auto result = cluster.SubmitAndRun(
        (target + 1) % sites,
        Bump("k" + std::to_string(target), cluster.site_id(target)));
    if (result.has_value() && result->committed()) {
      ++committed;
    }
    cluster.RunFor(0.01);
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  if (registry != nullptr) {
    cluster.ExportMetrics(registry);
  }
  return committed / elapsed;
}

double ThreadedThroughput(size_t sites, int txns) {
  ThreadCluster::Options options;
  options.site_count = sites;
  options.engine.prepare_timeout = 2.0;
  options.engine.ready_timeout = 2.0;
  ThreadCluster cluster(options);
  const size_t client_count = 4;
  for (size_t c = 0; c < client_count; ++c) {
    const size_t target = c % sites;
    cluster.Load(target,
                 "k" + std::to_string(target) + "/" + std::to_string(c),
                 Value::Int(0));
  }
  const auto start = std::chrono::steady_clock::now();
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < client_count; ++c) {
    clients.emplace_back([&, c] {
      for (int i = static_cast<int>(c); i < txns;
           i += static_cast<int>(client_count)) {
        // Each client owns a disjoint item: no conflicts, pure pipeline.
        const size_t target = c % sites;
        const auto result = cluster.SubmitAndWait(
            (target + 1) % sites,
            Bump("k" + std::to_string(target) + "/" + std::to_string(c),
                 cluster.site_id(target)));
        if (result.has_value() && result->committed()) {
          ++committed;
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return committed / elapsed;
}

}  // namespace
}  // namespace polyvalue

int main() {
  using namespace polyvalue;
  std::printf("Engine throughput (committed txns per CPU-second)\n\n");
  std::printf("%-34s %12s\n", "configuration", "txns/s");
  std::printf("%.*s\n", 48, "------------------------------------------------");
  MetricsRegistry registry;
  const double sim2 = SimThroughput(2, 2000, nullptr, &registry);
  const double sim4 = SimThroughput(4, 2000);
  std::printf("%-34s %12.0f\n", "sim runtime, 2 sites, sequential", sim2);
  std::printf("%-34s %12.0f\n", "sim runtime, 4 sites, sequential", sim4);
  // Same workload with a sink attached: the gap between this row and the
  // untraced one above is the full cost of tracing; the untraced row
  // itself only pays a null-pointer test per would-be event.
  CountingTraceSink counting;
  const double sim2_traced = SimThroughput(2, 2000, &counting);
  std::printf("%-34s %12.0f\n", "sim runtime, 2 sites, traced sink",
              sim2_traced);
  const double thr2 = ThreadedThroughput(2, 400);
  const double thr4 = ThreadedThroughput(4, 400);
  std::printf("%-34s %12.0f\n", "threaded mem runtime, 2 sites x4 cli", thr2);
  std::printf("%-34s %12.0f\n", "threaded mem runtime, 4 sites x4 cli", thr4);
  std::printf("\n(threaded numbers include real thread handoffs per "
              "message; the mem transport\ndelivers through per-site "
              "dispatcher threads.)\n");
  std::printf("\ntracing: %llu events through the sink; traced/untraced "
              "throughput ratio %.2f\n",
              static_cast<unsigned long long>(counting.count()),
              sim2_traced / sim2);

  registry.Gauge("bench.sim_2site_txns_per_sec", sim2);
  registry.Gauge("bench.sim_4site_txns_per_sec", sim4);
  registry.Gauge("bench.sim_2site_traced_txns_per_sec", sim2_traced);
  registry.Gauge("bench.threaded_2site_txns_per_sec", thr2);
  registry.Gauge("bench.threaded_4site_txns_per_sec", thr4);
  registry.SetCounter("bench.trace_events_emitted", counting.count());
  if (const char* path = std::getenv("POLYV_METRICS_JSON")) {
    const Status status = registry.WriteJsonFile(path);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write metrics JSON to %s: %s\n", path,
                   status.message().c_str());
      return 1;
    }
    std::printf("metrics JSON written to %s\n", path);
  }
  return 0;
}
