// Experiment X9 (extension): measuring the §2.2 premise.
//
// "Window minimization" protocols — 2PC among them — rest on the claim
// that the vulnerable window (READY until outcome known) is small next
// to the computation preceding it. On this engine, a participant's
// compute phase spans PREPARE -> WRITE_REQ: its own reply, the
// coordinator waiting for EVERY other participant's reply, executing
// the transaction, and shipping writes. The window is just its own
// READY -> COMPLETE round trip. So with more participants and jittery
// links the compute phase is straggler-bound while the window is not —
// which is exactly why the §2.2 structure (compute everything first,
// then a brief decision exchange) pays off.
//
// The bench sweeps participant fan-out under heterogeneous link delays
// and reports both phases as measured by the engine's instrumentation.
#include <cstdio>
#include <string>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

struct Measurement {
  double compute_ms;
  double wait_ms;
  uint64_t samples;
};

// Runs `txns` transactions touching one item on each of `fan_out` sites,
// with `exec_ms` of (virtual) computation at the coordinator.
Measurement Measure(size_t fan_out, double exec_ms, int txns) {
  SimCluster::Options options;
  options.site_count = fan_out + 1;  // site 0 coordinates
  options.min_delay = 0.002;
  options.max_delay = 0.040;  // jittery links: stragglers exist
  options.seed = 77 + fan_out;
  options.engine.prepare_timeout = 30.0;
  options.engine.ready_timeout = 30.0;
  options.engine.wait_timeout = 30.0;
  options.engine.execution_delay = exec_ms / 1e3;
  SimCluster cluster(options);
  for (size_t s = 1; s <= fan_out; ++s) {
    cluster.Load(s, "k" + std::to_string(s), Value::Int(0));
  }
  for (int i = 0; i < txns; ++i) {
    TxnSpec spec;
    for (size_t s = 1; s <= fan_out; ++s) {
      spec.ReadWrite("k" + std::to_string(s), cluster.site_id(s));
    }
    spec.Logic([fan_out](const TxnReads& reads) {
      TxnEffect e;
      for (size_t s = 1; s <= fan_out; ++s) {
        const ItemKey key = "k" + std::to_string(s);
        e.writes[key] = Value::Int(reads.IntAt(key) + 1);
      }
      return e;
    });
    const auto result = cluster.SubmitAndRun(0, std::move(spec), 120.0);
    (void)result;
    cluster.RunFor(0.3);
  }
  const EngineMetrics m = cluster.TotalMetrics();
  Measurement out{};
  out.samples = m.wait_phase_count;
  if (m.compute_phase_count > 0) {
    out.compute_ms =
        m.compute_phase_seconds / m.compute_phase_count * 1e3;
  }
  if (m.wait_phase_count > 0) {
    out.wait_ms = m.wait_phase_seconds / m.wait_phase_count * 1e3;
  }
  return out;
}

}  // namespace
}  // namespace polyvalue

int main() {
  using namespace polyvalue;
  std::printf("Participant phase durations (links 2-40 ms, failure-free)\n");
  std::printf("compute phase = PREPARE..WRITE_REQ (includes the txn's "
              "computation);\nwindow = READY..COMPLETE (the vulnerable "
              "in-doubt stretch).\n\n");
  std::printf("%-13s %-10s | %-14s %-14s %-16s\n", "participants",
              "exec (ms)", "compute (ms)", "window (ms)",
              "compute/window");
  std::printf("%.*s\n", 72,
              "-----------------------------------------------------------"
              "-------------");
  for (size_t fan_out : {2u, 8u}) {
    for (double exec_ms : {0.0, 100.0, 1000.0}) {
      const Measurement m = Measure(fan_out, exec_ms, 40);
      std::printf("%-13zu %-10.0f | %-14.1f %-14.1f %-16.2f\n", fan_out,
                  exec_ms, m.compute_ms, m.wait_ms,
                  m.wait_ms > 0 ? m.compute_ms / m.wait_ms : 0.0);
    }
  }
  std::printf(
      "\nExpected shape: the window stays a few round trips regardless of "
      "the\ntransaction's computation, while the compute phase absorbs "
      "all of it —\n§2.2's premise, measured on the engine. A failure "
      "landing anywhere in the\nlong compute phase costs only an abort; "
      "only the short window can strand\nparticipants — and polyvalues "
      "then make even that window non-blocking.\n");
  return 0;
}
