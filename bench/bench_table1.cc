// Regenerates Table 1 of the paper: "Typical Predictions of the Number
// of Polyvalues in a Database" — the steady-state P for a grid of
// (U, F, I, R, Y, D) parameter settings, from the §4.1 closed form
//     P = U·F·I / (I·R + U·Y − U·D).
//
// Output: one row per parameter set with the paper's printed value (where
// the archival scan is legible) next to ours. See EXPERIMENTS.md for the
// row-by-row comparison.
#include <cmath>
#include <cstdio>

#include "src/model/analytic.h"

namespace polyvalue {
namespace {

void PrintTable1() {
  std::printf("Table 1: Typical Predictions of the Number of Polyvalues "
              "in a Database\n");
  std::printf("%-4s %-7s %-10s %-7s %-3s %-3s | %-9s %-9s %s\n", "U", "F",
              "I", "R", "Y", "D", "paper P", "model P", "note");
  std::printf("%.*s\n", 78,
              "-----------------------------------------------------------"
              "--------------------");
  for (const Table1Row& row : Table1Rows()) {
    const Prediction pred = Predict(row.params);
    char paper[16];
    if (std::isnan(row.paper_value)) {
      std::snprintf(paper, sizeof(paper), "   —");
    } else {
      std::snprintf(paper, sizeof(paper), "%7.2f", row.paper_value);
    }
    char model[16];
    if (!pred.stable) {
      std::snprintf(model, sizeof(model), "   inf*");
    } else {
      std::snprintf(model, sizeof(model), "%7.2f", pred.steady_state);
    }
    std::printf("%-4.0f %-7.4f %-10.0f %-7.4f %-3.0f %-3.0f | %-9s %-9s %s\n",
                row.params.updates_per_second,
                row.params.failure_probability, row.params.items,
                row.params.recovery_rate, row.params.overwrite_probability,
                row.params.dependency_degree, paper, model, row.note);
  }
  std::printf("\n(*) IR + UY − UD <= 0: the first-order model diverges; the "
              "paper notes such\n    parameter choices are outside the "
              "region where one would operate the system.\n");
}

void PrintTransientDemo() {
  // The decay the paper's solution predicts after a burst of failures.
  ModelParams p;
  p.updates_per_second = 10;
  p.failure_probability = 1e-4;
  p.items = 1e6;
  p.recovery_rate = 1e-3;
  p.overwrite_probability = 0;
  p.dependency_degree = 1;
  const Prediction pred = Predict(p);
  std::printf("\nTransient P(t) after a burst leaves P(0) = 100 "
              "(typical parameters, P_inf = %.2f):\n",
              pred.steady_state);
  std::printf("%-10s %-10s\n", "t (s)", "P(t)");
  for (double t : {0.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0}) {
    std::printf("%-10.0f %-10.2f\n", t, TransientP(p, 100.0, t));
  }
}

}  // namespace
}  // namespace polyvalue

int main() {
  polyvalue::PrintTable1();
  polyvalue::PrintTransientDemo();
  return 0;
}
