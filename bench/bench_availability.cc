// Experiment X1 (extension): availability during failures, three ways.
//
// The paper argues (§1, §2, §5) that polyvalues let processing continue
// through the in-doubt window that blocks classic 2PC, at no cost to
// eventual consistency. Gray & Lamport's Paxos Commit attacks the same
// window from the other side: replicate the DECISION so no single
// coordinator crash can strand a prepared participant. This bench runs
// all three protocol legs against an identical failure schedule — a
// coordinator site crashes mid-traffic and stays down for an outage of
// swept length — and quantifies the trade:
//
//   block       : classic blocking 2PC (§2.2) — prepared participants
//                 stall for the whole outage;
//   polyvalue   : the paper's mechanism — participants convert to
//                 polyvalues after wait_timeout and keep serving;
//   paxos_commit: Gray-Lamport — a standby leader finishes the commit,
//                 so the stalled window collapses to the failover
//                 timeout regardless of outage length.
//
// Series reported per protocol and outage length:
//   * commit rate during the outage (offered-load normalised),
//   * mean latency of completed transactions during the outage,
//   * the STALLED WINDOW: mean seconds a participant sat between
//     casting its vote and learning the outcome (wait-phase stats) —
//     the in-doubt exposure the three designs fight over,
//   * polyvalue installs / uncertain client outputs,
//   * post-heal audit: residual uncertainty and conservation drift
//     (nonzero drift = atomicity violation).
//
// With POLYV_AVAILABILITY_JSON=<path> the full grid is also written as
// one consolidated JSON artifact (schema_version 1, byte-reproducible
// across runs: the whole sweep is a pure function of the pinned seed).
// tools/bench_availability_gate.py re-validates it in CI. Exit status
// is non-zero if any gated expectation fails.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/workload/transfer.h"

namespace polyvalue {
namespace {

struct Cell {
  double outage;
  std::string protocol;
  WorkloadReport report;
  double commit_pct;
  double stall_mean;  // mean wait-phase seconds (vote -> outcome)
  double stall_max;
};

WorkloadParams BaseParams(double outage) {
  WorkloadParams p;
  p.sites = 4;
  p.accounts_per_site = 24;
  p.initial_balance = 1000;
  p.txn_rate = 80;
  p.duration = 40;
  p.settle_time = 30;
  p.crash_site = 0;
  p.crash_time = 4;
  p.recover_time = 4 + outage;
  // The crash site flaps: every crash instant is a fresh chance to catch
  // transactions in the in-doubt window, so the measured effect is the
  // expectation rather than one coin flip.
  p.crash_cycles = static_cast<int>(30.0 / (outage + 1.0));
  p.up_gap = 1.0;
  p.seed = 1234;
  p.min_delay = 0.01;
  p.max_delay = 0.02;
  p.engine.prepare_timeout = 0.3;
  p.engine.ready_timeout = 0.3;
  p.engine.wait_timeout = 0.1;
  p.engine.inquiry_interval = 0.25;
  return p;
}

WorkloadParams ParamsFor(const std::string& protocol, double outage) {
  WorkloadParams p = BaseParams(outage);
  if (protocol == "block") {
    p.engine.policy = InDoubtPolicy::kBlock;
  } else if (protocol == "polyvalue") {
    p.engine.policy = InDoubtPolicy::kPolyvalue;
  } else {  // paxos_commit
    p.engine.leg = ProtocolLeg::kPaxosCommit;
    p.engine.paxos_failover_timeout = 0.2;
  }
  return p;
}

Cell RunCell(const std::string& protocol, double outage) {
  Cell cell;
  cell.outage = outage;
  cell.protocol = protocol;
  cell.report = RunTransferWorkload(ParamsFor(protocol, outage));
  const WorkloadReport& r = cell.report;
  cell.commit_pct =
      r.outage_submitted == 0
          ? 0.0
          : 100.0 * static_cast<double>(r.outage_committed) /
                static_cast<double>(r.outage_submitted);
  cell.stall_mean =
      r.metrics.wait_phase_count == 0
          ? 0.0
          : r.metrics.wait_phase_seconds /
                static_cast<double>(r.metrics.wait_phase_count);
  cell.stall_max = r.metrics.wait_phase_max;
  return cell;
}

// The gated expectations; returns a list of human-readable violations.
std::vector<std::string> Gate(const std::vector<Cell>& cells) {
  std::vector<std::string> problems;
  // Index the grid for the cross-protocol comparisons.
  auto find = [&cells](const std::string& protocol,
                       double outage) -> const Cell* {
    for (const Cell& c : cells) {
      if (c.protocol == protocol && c.outage == outage) {
        return &c;
      }
    }
    return nullptr;
  };
  for (const Cell& c : cells) {
    const std::string where =
        c.protocol + "/outage=" + std::to_string(static_cast<int>(c.outage));
    if (c.report.conservation_drift != 0) {
      problems.push_back(where + ": conservation drift != 0");
    }
    if (!c.report.all_items_certain) {
      problems.push_back(where + ": residual uncertainty after settle");
    }
    if (c.report.outage_submitted == 0) {
      problems.push_back(where + ": no traffic landed in the outage");
    }
  }
  for (double outage : {2.0, 5.0, 10.0}) {
    const Cell* block = find("block", outage);
    const Cell* paxos = find("paxos_commit", outage);
    const Cell* poly = find("polyvalue", outage);
    if (block == nullptr || paxos == nullptr || poly == nullptr) {
      problems.push_back("grid is missing a protocol cell");
      continue;
    }
    // The tentpole claim: Paxos Commit eliminates the coordinator
    // in-doubt window. Blocking 2PC stalls a stranded participant for
    // roughly the outage; Paxos failover resolves it in O(failover
    // timeout + a recovery ballot's round trips), INDEPENDENT of the
    // outage length. The MEAN stall is dominated by the thousands of
    // healthy wait phases (~1 RTT), so both gates are on the worst
    // case: block must grow with the outage, paxos must stay under a
    // constant bound (2.5x the 0.2 s failover timeout).
    if (block->stall_max < 0.9 * outage) {
      problems.push_back(
          "outage=" + std::to_string(static_cast<int>(outage)) +
          ": blocking 2PC stalled window did not track the outage");
    }
    if (paxos->stall_max > 0.5) {
      problems.push_back(
          "outage=" + std::to_string(static_cast<int>(outage)) +
          ": paxos worst-case stalled window above the failover bound");
    }
    // Paxos never manufactures uncertainty: the decision completes
    // instead of being guessed around.
    if (paxos->report.polyvalue_installs != 0 ||
        paxos->report.uncertain_outputs != 0) {
      problems.push_back(
          "outage=" + std::to_string(static_cast<int>(outage)) +
          ": paxos leg produced polyvalues/uncertain outputs");
    }
    // Commit rate during the outage: polyvalue must beat blocking
    // (stranded locks abort later transactions); Paxos pays an extra
    // message round per commit, so it only has to stay within 10% of
    // the blocking baseline — its win is the stall column, not
    // throughput.
    if (paxos->commit_pct < 0.9 * block->commit_pct) {
      problems.push_back(
          "outage=" + std::to_string(static_cast<int>(outage)) +
          ": paxos outage commit% more than 10% below blocking 2PC");
    }
    if (poly->commit_pct < block->commit_pct) {
      problems.push_back(
          "outage=" + std::to_string(static_cast<int>(outage)) +
          ": polyvalue outage commit% below blocking 2PC");
    }
  }
  return problems;
}

void WriteJson(const std::string& path, const std::vector<Cell>& cells,
               bool pass) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"bench\": \"bench_availability\",\n");
  std::fprintf(f, "  \"config\": {\n");
  std::fprintf(f, "    \"seed\": 1234,\n");
  std::fprintf(f, "    \"sites\": 4,\n");
  std::fprintf(f, "    \"txn_rate\": 80,\n");
  std::fprintf(f, "    \"outages\": [2, 5, 10],\n");
  std::fprintf(f,
               "    \"protocols\": [\"block\", \"polyvalue\", "
               "\"paxos_commit\"]\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const WorkloadReport& r = c.report;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"outage\": %d,\n",
                 static_cast<int>(c.outage));
    std::fprintf(f, "      \"protocol\": \"%s\",\n", c.protocol.c_str());
    std::fprintf(f, "      \"submitted\": %llu,\n",
                 static_cast<unsigned long long>(r.submitted));
    std::fprintf(f, "      \"committed\": %llu,\n",
                 static_cast<unsigned long long>(r.committed));
    std::fprintf(f, "      \"outage_submitted\": %llu,\n",
                 static_cast<unsigned long long>(r.outage_submitted));
    std::fprintf(f, "      \"outage_committed\": %llu,\n",
                 static_cast<unsigned long long>(r.outage_committed));
    std::fprintf(f, "      \"outage_commit_pct\": %.3f,\n", c.commit_pct);
    std::fprintf(f, "      \"outage_latency_ms\": %.3f,\n",
                 r.outage_latency.mean() * 1e3);
    std::fprintf(f, "      \"stalled_window_mean_s\": %.6f,\n",
                 c.stall_mean);
    std::fprintf(f, "      \"stalled_window_max_s\": %.6f,\n",
                 c.stall_max);
    std::fprintf(f, "      \"stalled_window_count\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.metrics.wait_phase_count));
    std::fprintf(f, "      \"paxos_failovers\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.metrics.paxos_failovers));
    std::fprintf(f, "      \"paxos_recovery_ballots\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.metrics.paxos_recovery_ballots));
    std::fprintf(f, "      \"polyvalue_installs\": %llu,\n",
                 static_cast<unsigned long long>(r.polyvalue_installs));
    std::fprintf(f, "      \"uncertain_outputs\": %llu,\n",
                 static_cast<unsigned long long>(r.uncertain_outputs));
    std::fprintf(f, "      \"conservation_drift\": %lld,\n",
                 static_cast<long long>(r.conservation_drift));
    std::fprintf(f, "      \"all_items_certain\": %s\n",
                 r.all_items_certain ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"pass\": %s\n", pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int RunSweep() {
  std::printf("Availability under coordinator failure: blocking 2PC vs "
              "polyvalues vs Paxos Commit\n");
  std::printf("(4 sites, 80 txn/s offered, flapping coordinator, outage "
              "length swept; seed fixed)\n\n");
  std::printf("%-8s %-13s | %-9s %-9s %-9s | %-8s %-10s %-10s | %-9s "
              "%-10s %-7s\n",
              "outage", "protocol", "out.subm", "out.comm", "commit%",
              "lat(ms)", "stall-avg", "stall-max", "poly-inst",
              "uncertain", "drift");
  std::printf("%.*s\n", 108,
              "-----------------------------------------------------------"
              "-----------------------------------------------------------");
  std::vector<Cell> cells;
  for (double outage : {2.0, 5.0, 10.0}) {
    for (const char* protocol : {"block", "polyvalue", "paxos_commit"}) {
      cells.push_back(RunCell(protocol, outage));
      const Cell& c = cells.back();
      const WorkloadReport& r = c.report;
      char drift[24];
      if (r.conservation_drift == INT64_MAX) {
        std::snprintf(drift, sizeof(drift), "UNRESOLVED");
      } else {
        std::snprintf(drift, sizeof(drift), "%lld",
                      static_cast<long long>(r.conservation_drift));
      }
      std::printf("%-8.0f %-13s | %-9llu %-9llu %-9.1f | %-8.1f %-10.4f "
                  "%-10.4f | %-9llu %-10llu %-7s\n",
                  c.outage, c.protocol.c_str(),
                  static_cast<unsigned long long>(r.outage_submitted),
                  static_cast<unsigned long long>(r.outage_committed),
                  c.commit_pct, r.outage_latency.mean() * 1e3,
                  c.stall_mean, c.stall_max,
                  static_cast<unsigned long long>(r.polyvalue_installs),
                  static_cast<unsigned long long>(r.uncertain_outputs),
                  drift);
    }
    std::printf("\n");
  }
  std::printf(
      "The shape, quantified:\n"
      "  * block pays for every crash with a stalled window ~ the "
      "outage length;\n"
      "  * polyvalue caps the stall at wait_timeout and keeps items "
      "available\n    (polyvalue installs, later reduced — drift stays "
      "0);\n"
      "  * paxos_commit collapses the stall to the failover timeout: "
      "the decision\n    is replicated, so no polyvalues and no guess "
      "— the in-doubt window is\n    engineered away instead of worked "
      "around.\n");

  const std::vector<std::string> problems = Gate(cells);
  const bool pass = problems.empty();
  for (const std::string& p : problems) {
    std::fprintf(stderr, "GATE FAIL: %s\n", p.c_str());
  }
  const char* json_path = std::getenv("POLYV_AVAILABILITY_JSON");
  if (json_path != nullptr) {
    WriteJson(json_path, cells, pass);
  }
  std::printf("\nbench_availability: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace polyvalue

int main() { return polyvalue::RunSweep(); }
