// Experiment X1 (extension): availability during failures.
//
// The paper argues (§1, §2, §5) that polyvalues let processing continue
// through the in-doubt window that blocks classic 2PC, at no cost to
// eventual consistency — and that the §2.3 "arbitrary decision"
// alternative is fast but unsound. This bench quantifies all three with
// an identical failure schedule: a coordinator site crashes mid-traffic
// and stays down for an outage of swept length.
//
// Series reported per policy and outage length:
//   * commit rate during the outage (offered-load normalised),
//   * mean latency of completed transactions during the outage,
//   * polyvalue installs / uncertain client outputs,
//   * post-heal audit: residual uncertainty and conservation drift
//     (nonzero drift = atomicity violation).
#include <cstdio>

#include "src/workload/transfer.h"

namespace polyvalue {
namespace {

WorkloadParams BaseParams(InDoubtPolicy policy, double outage) {
  WorkloadParams p;
  p.sites = 4;
  p.accounts_per_site = 24;
  p.initial_balance = 1000;
  p.txn_rate = 80;
  p.duration = 40;
  p.settle_time = 30;
  p.crash_site = 0;
  p.crash_time = 4;
  p.recover_time = 4 + outage;
  // The crash site flaps: every crash instant is a fresh chance to catch
  // transactions in the in-doubt window, so the measured effect is the
  // expectation rather than one coin flip.
  p.crash_cycles = static_cast<int>(30.0 / (outage + 1.0));
  p.up_gap = 1.0;
  p.seed = 1234;
  p.min_delay = 0.01;
  p.max_delay = 0.02;
  p.engine.prepare_timeout = 0.3;
  p.engine.ready_timeout = 0.3;
  p.engine.wait_timeout = 0.1;
  p.engine.inquiry_interval = 0.25;
  p.engine.policy = policy;
  return p;
}

void RunSweep() {
  std::printf("Availability under coordinator failure: polyvalues vs "
              "blocking 2PC vs relaxed\n");
  std::printf("(4 sites, 80 txn/s offered, crash at t=5s, outage length "
              "swept; seed fixed)\n\n");
  std::printf("%-8s %-11s | %-9s %-9s %-9s | %-8s %-9s %-10s %-7s\n",
              "outage", "policy", "out.subm", "out.comm", "commit%",
              "lat(ms)", "poly-inst", "uncertain", "drift");
  std::printf("%.*s\n", 96,
              "-----------------------------------------------------------"
              "---------------------------------------------");
  for (double outage : {2.0, 5.0, 10.0}) {
    for (InDoubtPolicy policy :
         {InDoubtPolicy::kPolyvalue, InDoubtPolicy::kBlock,
          InDoubtPolicy::kArbitrary}) {
      const WorkloadReport r =
          RunTransferWorkload(BaseParams(policy, outage));
      const double commit_pct =
          r.outage_submitted == 0
              ? 0.0
              : 100.0 * static_cast<double>(r.outage_committed) /
                    static_cast<double>(r.outage_submitted);
      char drift[24];
      if (r.conservation_drift == INT64_MAX) {
        std::snprintf(drift, sizeof(drift), "UNRESOLVED");
      } else {
        std::snprintf(drift, sizeof(drift), "%lld",
                      static_cast<long long>(r.conservation_drift));
      }
      std::printf("%-8.0f %-11s | %-9llu %-9llu %-9.1f | %-8.1f %-9llu "
                  "%-10llu %-7s\n",
                  outage, InDoubtPolicyName(policy),
                  static_cast<unsigned long long>(r.outage_submitted),
                  static_cast<unsigned long long>(r.outage_committed),
                  commit_pct, r.outage_latency.mean() * 1e3,
                  static_cast<unsigned long long>(r.polyvalue_installs),
                  static_cast<unsigned long long>(r.uncertain_outputs),
                  drift);
    }
    std::printf("\n");
  }
  std::printf("Expected shape (the paper's argument, quantified):\n"
              "  * polyvalue >= block on outage commit rate — blocked "
              "items abort later txns;\n"
              "  * arbitrary matches polyvalue on availability but shows "
              "nonzero drift\n    (atomicity violations) once outages are "
              "long enough;\n"
              "  * polyvalue and block always end with drift = 0 and no "
              "residual uncertainty.\n");
}

}  // namespace
}  // namespace polyvalue

int main() {
  polyvalue::RunSweep();
  return 0;
}
