// Experiment X4 (extension): the §5 application studies, quantified.
//
// The paper's motivating applications are workloads whose *important*
// outputs depend only loosely on exact database state:
//
//   * reservations — grant a seat when even the LARGEST possible value
//     of "seats taken" is below capacity;
//   * electronic funds transfer — authorise a purchase when even the
//     SMALLEST possible balance covers it.
//
// This bench runs both against a cluster where a failure has stranded an
// update to the critical counter, under the polyvalue policy and the
// blocking policy, and reports how many requests during the outage got
// immediate definite answers. With polyvalues most answers stay definite
// (the alternatives agree); with blocking the item is simply unavailable.
#include <cstdio>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig MakeConfig(InDoubtPolicy policy) {
  EngineConfig config;
  config.prepare_timeout = 0.3;
  config.ready_timeout = 0.3;
  config.wait_timeout = 0.08;
  config.inquiry_interval = 0.25;
  config.policy = policy;
  return config;
}

SimCluster::Options Options(InDoubtPolicy policy) {
  SimCluster::Options options;
  options.site_count = 3;
  options.engine = MakeConfig(policy);
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  return options;
}

struct AppResult {
  int granted = 0;
  int denied = 0;
  int aborted = 0;   // could not run (blocked item)
  int uncertain = 0; // ran, but the answer itself was uncertain
};

// Strands an increment of `counter` (held at site 1) coordinated by
// site 0, leaving the counter in-doubt between `base` and `base+delta`.
void StrandCounterUpdate(SimCluster* cluster, const ItemKey& counter,
                         int64_t delta) {
  TxnSpec spec;
  spec.ReadWrite(counter, cluster->site_id(1));
  spec.Logic([counter, delta](const TxnReads& reads) {
    TxnEffect e;
    e.writes[counter] = Value::Int(reads.IntAt(counter) + delta);
    return e;
  });
  cluster->Submit(0, std::move(spec), [](const TxnResult&) {});
  cluster->sim().At(cluster->sim().now() + 0.035,
                    [cluster] { cluster->CrashSite(0); });
  cluster->RunFor(0.5);  // past the wait timeout
}

// Reservations: grant while max-possible seats_taken < capacity.
AppResult RunReservations(InDoubtPolicy policy, int requests,
                          int64_t capacity) {
  SimCluster cluster(Options(policy));
  cluster.Load(1, "seats_taken", Value::Int(40));
  StrandCounterUpdate(&cluster, "seats_taken", 1);

  AppResult result;
  for (int i = 0; i < requests; ++i) {
    TxnSpec spec;
    spec.ReadWrite("seats_taken", cluster.site_id(1));
    spec.Logic([capacity](const TxnReads& reads) {
      const int64_t taken = reads.IntAt("seats_taken");
      if (taken >= capacity) {
        TxnEffect deny;
        deny.output = Value::Bool(false);
        return deny;  // definite denial, no write
      }
      TxnEffect grant;
      grant.writes["seats_taken"] = Value::Int(taken + 1);
      grant.output = Value::Bool(true);
      return grant;
    });
    const auto r = cluster.SubmitAndRun(2, std::move(spec));
    cluster.RunFor(0.1);
    if (!r.has_value() || !r->committed()) {
      ++result.aborted;
      continue;
    }
    if (!r->output.is_certain()) {
      ++result.uncertain;
    } else if (r->output.certain_value() == Value::Bool(true)) {
      ++result.granted;
    } else {
      ++result.denied;
    }
  }
  return result;
}

// EFT authorisation: approve while min-possible balance covers amount.
AppResult RunEft(InDoubtPolicy policy, int requests, int64_t amount) {
  SimCluster cluster(Options(policy));
  cluster.Load(1, "balance", Value::Int(10000));
  StrandCounterUpdate(&cluster, "balance", -120);  // in-doubt debit

  AppResult result;
  for (int i = 0; i < requests; ++i) {
    TxnSpec spec;
    spec.ReadWrite("balance", cluster.site_id(1));
    spec.Logic([amount](const TxnReads& reads) {
      const int64_t balance = reads.IntAt("balance");
      if (balance < amount) {
        TxnEffect deny;
        deny.output = Value::Bool(false);
        return deny;
      }
      TxnEffect approve;
      approve.writes["balance"] = Value::Int(balance - amount);
      approve.output = Value::Bool(true);
      return approve;
    });
    const auto r = cluster.SubmitAndRun(2, std::move(spec));
    cluster.RunFor(0.1);
    if (!r.has_value() || !r->committed()) {
      ++result.aborted;
    } else if (!r->output.is_certain()) {
      ++result.uncertain;
    } else if (r->output.certain_value() == Value::Bool(true)) {
      ++result.granted;
    } else {
      ++result.denied;
    }
  }
  return result;
}

void PrintRow(const char* app, const char* policy, const AppResult& r) {
  std::printf("%-14s %-11s | %-8d %-8d %-10d %-10d\n", app, policy,
              r.granted, r.denied, r.uncertain, r.aborted);
}

}  // namespace
}  // namespace polyvalue

int main() {
  using namespace polyvalue;
  std::printf("§5 applications during an in-doubt failure "
              "(coordinator down, counter stranded)\n\n");
  std::printf("%-14s %-11s | %-8s %-8s %-10s %-10s\n", "application",
              "policy", "granted", "denied", "uncertain", "unavailable");
  std::printf("%.*s\n", 70,
              "-----------------------------------------------------------"
              "-----------");
  PrintRow("reservations", "polyvalue",
           RunReservations(InDoubtPolicy::kPolyvalue, 30, 100));
  PrintRow("reservations", "block",
           RunReservations(InDoubtPolicy::kBlock, 30, 100));
  PrintRow("eft-authorise", "polyvalue",
           RunEft(InDoubtPolicy::kPolyvalue, 30, 50));
  PrintRow("eft-authorise", "block",
           RunEft(InDoubtPolicy::kBlock, 30, 50));
  std::printf(
      "\nExpected shape: under the polyvalue policy every request gets an\n"
      "immediate definite answer (all alternatives agree: plenty of seats\n"
      "/ funds), even though the counter itself is uncertain. Under\n"
      "blocking, the counter is locked for the whole outage and every\n"
      "request dies ('unavailable'). This is §5 of the paper, measured.\n");
  return 0;
}
